package core

import (
	"fmt"
	"strconv"

	"dyncg/internal/curve"
	"dyncg/internal/dsseq"
	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/penvelope"
	"dyncg/internal/pieces"
	"dyncg/internal/poly"
)

// PairEvent is one element of the chronological closest/farthest-pair
// sequence of §6: points A and B form the closest (farthest) pair of the
// whole system throughout [Lo, Hi].
type PairEvent struct {
	A, B   int
	Lo, Hi float64
}

// ClosestPairSequence implements the extension described in §6 ("Further
// Remarks"): with a mesh of λ_M(n(n−1)/2, 2k) or a hypercube of
// λ_H(n(n−1)/2, 2k) PEs, trivial modifications of Theorem 4.1 yield the
// chronological sequence of closest pairs — one squared-distance
// polynomial per pair, then one minimum-function construction. Time:
// Θ(λ^{1/2}(n(n−1)/2, 2k)) mesh, Θ(log² n) hypercube. Size machines with
// PairSequencePEs.
func ClosestPairSequence(m *machine.M, sys *motion.System) ([]PairEvent, error) {
	return pairSequence(m, sys, pieces.Min)
}

// FarthestPairSequence is the farthest-pair variant (the system diameter
// function over time).
func FarthestPairSequence(m *machine.M, sys *motion.System) ([]PairEvent, error) {
	return pairSequence(m, sys, pieces.Max)
}

// PairSequencePEs returns the PE count §6 prescribes for the pair
// sequences: Θ(λ(n(n−1)/2, 2k)), rounded for the topology by the caller
// (MeshFor/CubeFor round internally, so this returns the function count).
func PairSequencePEs(n, k int) int {
	return dsseq.LambdaBound(n*(n-1)/2, 2*k)
}

func pairSequence(m *machine.M, sys *motion.System, kind pieces.Kind) ([]PairEvent, error) {
	n := sys.N()
	if n < 2 {
		return nil, fmt.Errorf("core: pair sequence needs at least two points: %w", motion.ErrBadSystem)
	}
	if m.Observed() {
		name := "s6-closest-pair-seq"
		if kind == pieces.Max {
			name = "s6-farthest-pair-seq"
		}
		m.SpanBegin(name, "n", strconv.Itoa(n), "pairs", strconv.Itoa(n*(n-1)/2))
		defer m.SpanEnd()
	}
	// One PE per pair builds d²_{ij}(t) — Θ(1) local work after an
	// all-pairs replication, which is itself a sort-bounded grouping
	// (charged here as one sort-equivalent round over the machine).
	type pair struct{ a, b int }
	var pairs []pair
	cs := make([]curve.Curve, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{i, j})
			cs = append(cs, curve.NewPoly(sys.Points[i].DistSq(sys.Points[j])))
		}
	}
	chargeReplication(m)
	env, err := penvelope.EnvelopeOfCurves(m, cs, kind)
	if err != nil {
		return nil, err
	}
	out := make([]PairEvent, len(env))
	for i, p := range env {
		out[i] = PairEvent{A: pairs[p.ID].a, B: pairs[p.ID].b, Lo: p.Lo, Hi: p.Hi}
	}
	return out, nil
}

// chargeReplication charges the all-pairs data replication: distributing
// the n trajectories to the n(n−1)/2 pair-PEs is a grouping (sort-based
// concurrent read) on the pair machine.
func chargeReplication(m *machine.M) {
	nn := m.Size()
	regs := make([]machine.Reg[int], nn)
	for i := range regs {
		regs[i] = machine.Some(nn - i)
	}
	machine.Sort(m, regs, func(a, b int) bool { return a < b })
}

// SerialClosestPairSequence is the serial baseline for the §6 pair
// sequence.
func SerialClosestPairSequence(sys *motion.System, kind pieces.Kind) []PairEvent {
	n := sys.N()
	type pair struct{ a, b int }
	var pairs []pair
	var cs []curve.Curve
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{i, j})
			cs = append(cs, curve.NewPoly(sys.Points[i].DistSq(sys.Points[j])))
		}
	}
	env := pieces.EnvelopeOfCurves(cs, kind)
	out := make([]PairEvent, len(env))
	for i, p := range env {
		out[i] = PairEvent{A: pairs[p.ID].a, B: pairs[p.ID].b, Lo: p.Lo, Hi: p.Hi}
	}
	return out
}

// SteadyNearestNeighborD solves Proposition 5.2 in any fixed dimension d
// (the proposition is stated for d-dimensional space; the planar
// restriction elsewhere in §5 is only needed by the hull-based
// algorithms): broadcast the query trajectory, Θ(1) local construction
// of d²_{0j}, then a semigroup under the Lemma 5.1 steady-state order.
func SteadyNearestNeighborD(m *machine.M, sys *motion.System, origin int, farthest bool) (int, error) {
	if origin < 0 || origin >= sys.N() {
		return -1, fmt.Errorf("core: origin %d out of range: %w", origin, motion.ErrBadSystem)
	}
	if m.Observed() {
		m.SpanBegin("s6-steady-nn-d", "n", strconv.Itoa(sys.N()), "d", strconv.Itoa(sys.D))
		defer m.SpanEnd()
	}
	n := m.Size()
	fregs := make([]machine.Reg[motion.Point], n)
	fregs[origin%n] = machine.Some(sys.Points[origin])
	machine.Spread(m, fregs, machine.WholeMachine(n))
	m.ChargeLocal(1)
	type cand struct {
		d2 []float64 // polynomial coefficients of d²
		id int
	}
	regs := make([]machine.Reg[cand], n)
	for j, q := range sys.Points {
		if j == origin {
			continue
		}
		regs[j%n] = machine.Some(cand{d2: sys.Points[origin].DistSq(q), id: j})
	}
	machine.Semigroup(m, regs, machine.WholeMachine(n), func(a, b cand) cand {
		// Lemma 5.1: compare bounded-degree polynomials at t → ∞.
		c := poly.Poly(a.d2).CompareAtInfinity(poly.Poly(b.d2))
		if farthest {
			c = -c
		}
		if c < 0 || (c == 0 && a.id < b.id) {
			return a
		}
		return b
	})
	for i := range regs {
		if regs[i].Ok {
			return regs[i].V.id, nil
		}
	}
	return -1, fmt.Errorf("core: no neighbour found")
}
