package core

import (
	"math"
	"math/rand"
	"testing"

	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/pieces"
)

// bruteClosestPairD2 returns the squared distance of the closest pair of
// the whole system at time t.
func bruteClosestPairD2(sys *motion.System, t float64, farthest bool) float64 {
	best := math.Inf(1)
	if farthest {
		best = -1
	}
	for i := 0; i < sys.N(); i++ {
		for j := i + 1; j < sys.N(); j++ {
			a, b := sys.Points[i].At(t), sys.Points[j].At(t)
			d := 0.0
			for c := range a {
				d += (a[c] - b[c]) * (a[c] - b[c])
			}
			if (!farthest && d < best) || (farthest && d > best) {
				best = d
			}
		}
	}
	return best
}

// TestSection6ClosestPairSequence validates the §6 extension: the
// chronological closest-pair sequence reports, at every sampled time, a
// pair achieving the true minimum over all n(n−1)/2 pairs.
func TestSection6ClosestPairSequence(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	for trial := 0; trial < 12; trial++ {
		n := 3 + r.Intn(6)
		k := 1 + r.Intn(2)
		d := 1 + r.Intn(3)
		sys := motion.Random(r, n, k, d, 5)
		for _, mk := range []func(int, int, ...machine.Option) *machine.M{MeshFor, CubeFor} {
			m := mk(PairSequencePEs(n, k), 2*k)
			seq, err := ClosestPairSequence(m, sys)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if seq[0].Lo != 0 || !math.IsInf(seq[len(seq)-1].Hi, 1) {
				t.Fatalf("trial %d: pair sequence does not span [0,∞): %v", trial, seq)
			}
			for s := 0; s < 30; s++ {
				tm := float64(s)*0.37 + 0.011
				var ev *PairEvent
				for i := range seq {
					if tm >= seq[i].Lo && tm <= seq[i].Hi {
						ev = &seq[i]
					}
				}
				a, b := sys.Points[ev.A].At(tm), sys.Points[ev.B].At(tm)
				got := 0.0
				for c := range a {
					got += (a[c] - b[c]) * (a[c] - b[c])
				}
				want := bruteClosestPairD2(sys, tm, false)
				if math.Abs(got-want) > 1e-5*(1+want) {
					t.Fatalf("trial %d t=%v: pair (%d,%d) d²=%v, true min %v",
						trial, tm, ev.A, ev.B, got, want)
				}
			}
			// Serial baseline agrees up to benign near-tangency splits
			// (the merge trees associate differently, so a grazing
			// intersection can add a sliver piece in one but not the
			// other; the sampled-minimum check above is the ground
			// truth).
			ser := SerialClosestPairSequence(sys, pieces.Min)
			if len(ser) == 0 || absInt(len(ser)-len(seq)) > len(ser)/3+2 {
				t.Fatalf("trial %d: %d events vs serial %d", trial, len(seq), len(ser))
			}
		}
	}
}

func TestSection6FarthestPairSequence(t *testing.T) {
	r := rand.New(rand.NewSource(132))
	sys := motion.Random(r, 6, 1, 2, 5)
	m := CubeFor(PairSequencePEs(6, 1), 2)
	seq, err := FarthestPairSequence(m, sys)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 30; s++ {
		tm := float64(s)*0.41 + 0.013
		var ev *PairEvent
		for i := range seq {
			if tm >= seq[i].Lo && tm <= seq[i].Hi {
				ev = &seq[i]
			}
		}
		a, b := sys.Points[ev.A].At(tm), sys.Points[ev.B].At(tm)
		got := (a[0]-b[0])*(a[0]-b[0]) + (a[1]-b[1])*(a[1]-b[1])
		want := bruteClosestPairD2(sys, tm, true)
		if math.Abs(got-want) > 1e-5*(1+want) {
			t.Fatalf("t=%v: farthest pair d²=%v, true %v", tm, got, want)
		}
	}
	// The last farthest pair must match the steady-state farthest pair's
	// distance (ties possible on indices).
	m2 := CubeOf(8 * sys.N())
	sa, sb, _, err := SteadyFarthestPair(m2, sys)
	if err != nil {
		t.Fatal(err)
	}
	last := seq[len(seq)-1]
	dSeq := sys.Points[last.A].DistSq(sys.Points[last.B])
	dSteady := sys.Points[sa].DistSq(sys.Points[sb])
	if dSeq.CompareAtInfinity(dSteady) != 0 {
		t.Fatalf("transient tail pair (%d,%d) ≠ steady pair (%d,%d)",
			last.A, last.B, sa, sb)
	}
}

func TestPairSequenceTiny(t *testing.T) {
	r := rand.New(rand.NewSource(133))
	if _, err := ClosestPairSequence(CubeOf(4), motion.Random(r, 1, 1, 2, 5)); err == nil {
		t.Fatal("single point accepted")
	}
}

// TestSteadyNearestNeighborD: the d-dimensional steady nearest neighbour
// agrees with evaluation at a late time, for d = 1, 2, 3.
func TestSteadyNearestNeighborD(t *testing.T) {
	r := rand.New(rand.NewSource(134))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(10)
		d := 1 + r.Intn(3)
		sys := motion.Random(r, n, 2, d, 5)
		origin := r.Intn(n)
		m := CubeOf(n)
		got, err := SteadyNearestNeighborD(m, sys, origin, false)
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: exact polynomial comparison over all candidates.
		best := -1
		for j := range sys.Points {
			if j == origin {
				continue
			}
			if best < 0 {
				best = j
				continue
			}
			dj := sys.Points[origin].DistSq(sys.Points[j])
			db := sys.Points[origin].DistSq(sys.Points[best])
			if dj.CompareAtInfinity(db) < 0 {
				best = j
			}
		}
		gd := sys.Points[origin].DistSq(sys.Points[got])
		bd := sys.Points[origin].DistSq(sys.Points[best])
		if gd.CompareAtInfinity(bd) != 0 {
			t.Fatalf("trial %d (d=%d): nearest %d, want %d", trial, d, got, best)
		}
		// The planar special case agrees with the RatFun implementation.
		if d == 2 {
			m2 := CubeOf(n)
			got2, err := SteadyNearestNeighbor(m2, sys, origin, false)
			if err != nil {
				t.Fatal(err)
			}
			g2 := sys.Points[origin].DistSq(sys.Points[got2])
			if gd.CompareAtInfinity(g2) != 0 {
				t.Fatalf("trial %d: d-dim and planar disagree: %d vs %d", trial, got, got2)
			}
		}
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
