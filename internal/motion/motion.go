// Package motion implements the paper's input model (§2.4): systems of n
// point-objects moving in Euclidean d-dimensional space with k-motion —
// every coordinate of every trajectory is a polynomial of degree at most
// k in the time variable, no two points share an initial position, and
// each trajectory has a Θ(1)-size description held by one PE.
//
// It also provides the derived bounded-degree curves the algorithms of
// §4–§5 consume (squared distances: degree ≤ 2k; coordinate projections:
// degree ≤ k) and workload generators for the benchmark harness.
package motion

import (
	"errors"
	"fmt"
	"math/rand"

	"dyncg/internal/curve"
	"dyncg/internal/poly"
	"dyncg/internal/ratfun"
)

// ErrBadSystem reports an input that violates the paper's §2.4 model (an
// empty system, mixed dimensions, coincident initial positions) or a
// query that does not fit the system (an out-of-range origin, a
// dimension mismatch). Every such validation error in this package and
// internal/core wraps it; test with errors.Is. The facade re-exports it
// as dyncg.ErrBadSystem.
var ErrBadSystem = errors.New("motion: invalid system of moving points")

// Point is one moving point-object: Coord[i] is the polynomial giving its
// i-th coordinate as a function of time.
type Point struct {
	Coord []poly.Poly
}

// NewPoint builds a point from its coordinate polynomials.
func NewPoint(coords ...poly.Poly) Point { return Point{Coord: coords} }

// Dim returns the dimension of the space the point moves in.
func (p Point) Dim() int { return len(p.Coord) }

// At returns the position at time t.
func (p Point) At(t float64) []float64 {
	pos := make([]float64, len(p.Coord))
	for i, c := range p.Coord {
		pos[i] = c.Eval(t)
	}
	return pos
}

// Degree returns the maximum degree over the coordinates — the point's k.
func (p Point) Degree() int {
	k := 0
	for _, c := range p.Coord {
		if d := c.Degree(); d > k {
			k = d
		}
	}
	return k
}

// DistSq returns the squared Euclidean distance between p and q as a
// polynomial of degree ≤ 2k — the function d²_{ij}(t) of §4.1.
func (p Point) DistSq(q Point) poly.Poly {
	if p.Dim() != q.Dim() {
		panic("motion: dimension mismatch")
	}
	var sum poly.Poly
	for i := range p.Coord {
		d := p.Coord[i].Sub(q.Coord[i])
		sum = sum.Add(d.Sq())
	}
	return sum
}

// AngleTo returns the angle function T(t) of the direction from p to q
// (§4.2), represented by its polynomial direction vector (planar points
// only).
func (p Point) AngleTo(q Point) curve.Angle {
	if p.Dim() != 2 || q.Dim() != 2 {
		panic("motion: AngleTo requires planar points")
	}
	return curve.NewAngle(q.Coord[0].Sub(p.Coord[0]), q.Coord[1].Sub(p.Coord[1]))
}

// SteadyX returns coordinate i as an element of the ordered field of
// rational functions at t → ∞, the representation used by the
// steady-state algorithms of §5 via Lemma 5.1.
func (p Point) Steady(i int) ratfun.RatFun { return ratfun.FromPoly(p.Coord[i]) }

// System is a dynamic system of moving point-objects.
type System struct {
	Points []Point
	K      int // motion degree bound
	D      int // dimension
}

// NewSystem validates and wraps a set of points (all must share the
// dimension; K is the observed maximum degree).
func NewSystem(pts []Point) (*System, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("empty system: %w", ErrBadSystem)
	}
	d := pts[0].Dim()
	k := 0
	for i, p := range pts {
		if p.Dim() != d {
			return nil, fmt.Errorf("point %d has dimension %d, want %d: %w", i, p.Dim(), d, ErrBadSystem)
		}
		if pd := p.Degree(); pd > k {
			k = pd
		}
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			same := true
			for c := 0; c < d; c++ {
				if pts[i].Coord[c].Eval(0) != pts[j].Coord[c].Eval(0) {
					same = false
					break
				}
			}
			if same {
				return nil, fmt.Errorf("points %d and %d share an initial position (violates §2.4): %w", i, j, ErrBadSystem)
			}
		}
	}
	return &System{Points: pts, K: k, D: d}, nil
}

// N returns the number of points.
func (s *System) N() int { return len(s.Points) }

// DistSqCurves returns the curves d²_{0j}(t) for j ≠ origin — the inputs
// to the closest/farthest-point algorithms of §4.1 (Theorem 4.1). IDs in
// the returned slice are the point indices j (compacted, origin skipped).
func (s *System) DistSqCurves(origin int) ([]curve.Curve, []int) {
	cs := make([]curve.Curve, 0, s.N()-1)
	ids := make([]int, 0, s.N()-1)
	for j, q := range s.Points {
		if j == origin {
			continue
		}
		cs = append(cs, curve.NewPoly(s.Points[origin].DistSq(q)))
		ids = append(ids, j)
	}
	return cs, ids
}

// CoordCurves returns the projections p_i(f_j(t)) for all points j — the
// inputs to the containment algorithms of §4.3.
func (s *System) CoordCurves(i int) []curve.Curve {
	cs := make([]curve.Curve, s.N())
	for j, p := range s.Points {
		cs[j] = curve.NewPoly(p.Coord[i])
	}
	return cs
}

// --- Workload generators -----------------------------------------------

// Random returns a random system of n points with k-motion in d
// dimensions: initial positions uniform in [-scale, scale]^d and higher
// coefficients Gaussian, shrinking with degree so mid-range times keep
// interesting crossings.
func Random(r *rand.Rand, n, k, d int, scale float64) *System {
	for {
		pts := make([]Point, n)
		for i := range pts {
			coords := make([]poly.Poly, d)
			for c := range coords {
				cf := make([]float64, k+1)
				cf[0] = (r.Float64()*2 - 1) * scale
				for deg := 1; deg <= k; deg++ {
					cf[deg] = r.NormFloat64() * scale / float64(deg*deg*2)
				}
				coords[c] = poly.New(cf...)
			}
			pts[i] = NewPoint(coords...)
		}
		s, err := NewSystem(pts)
		if err == nil {
			return s
		}
		// Re-roll on the (measure-zero) initial-position collision.
	}
}

// Converging returns n points in the plane that all head toward the
// origin with distinct linear motions — a collision-heavy workload for
// Theorem 4.2.
func Converging(r *rand.Rand, n int) *System {
	pts := make([]Point, n)
	for i := range pts {
		x0 := (r.Float64()*2 - 1) * 10
		y0 := (r.Float64()*2 - 1) * 10
		arrive := 1 + r.Float64()*9 // reaches the origin at this time
		pts[i] = NewPoint(
			poly.New(x0, -x0/arrive),
			poly.New(y0, -y0/arrive),
		)
	}
	s, err := NewSystem(pts)
	if err != nil {
		return Converging(r, n) // re-roll duplicate starts
	}
	return s
}

// OnCircle returns n static points on a circle (k = 0) — every point is a
// hull vertex; the classic worst case for hull-size-dependent algorithms.
func OnCircle(n int, radius float64) *System {
	pts := make([]Point, n)
	for i := range pts {
		// Rational approximations of the circle via the tan-half-angle
		// parameterisation keep coordinates exact-friendly.
		u := 2*float64(i)/float64(n) - 1 // in [-1, 1)
		den := 1 + u*u
		pts[i] = NewPoint(
			poly.Constant(radius*(1-u*u)/den),
			poly.Constant(radius*2*u/den),
		)
	}
	s, err := NewSystem(pts)
	if err != nil {
		panic(err)
	}
	return s
}

// Diverging returns n planar points with distinct velocity directions, so
// that in steady state every point is extreme (hull of directions), a
// stress case for §5's hull/diameter/rectangle algorithms.
func Diverging(r *rand.Rand, n int) *System {
	pts := make([]Point, n)
	for i := range pts {
		u := 2*float64(i)/float64(n) - 1
		den := 1 + u*u
		vx, vy := (1-u*u)/den, 2*u/den
		pts[i] = NewPoint(
			poly.New((r.Float64()*2-1)*3, vx),
			poly.New((r.Float64()*2-1)*3, vy),
		)
	}
	s, err := NewSystem(pts)
	if err != nil {
		return Diverging(r, n)
	}
	return s
}
