package motion

import (
	"math"
	"math/rand"
	"testing"

	"dyncg/internal/poly"
)

func TestPointBasics(t *testing.T) {
	p := NewPoint(poly.New(1, 2), poly.New(0, 0, 1)) // (1+2t, t²)
	if p.Dim() != 2 || p.Degree() != 2 {
		t.Fatalf("dim=%d deg=%d", p.Dim(), p.Degree())
	}
	pos := p.At(2)
	if pos[0] != 5 || pos[1] != 4 {
		t.Fatalf("At(2) = %v", pos)
	}
}

func TestDistSqDegreeBound(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		k := 1 + r.Intn(3)
		s := Random(r, 2, k, 3, 5)
		d2 := s.Points[0].DistSq(s.Points[1])
		if d2.Degree() > 2*k {
			t.Fatalf("deg d² = %d > 2k = %d", d2.Degree(), 2*k)
		}
		// d²(t) ≥ 0 and matches coordinates at samples.
		for i := 0; i < 20; i++ {
			tm := float64(i) * 0.3
			a, b := s.Points[0].At(tm), s.Points[1].At(tm)
			want := 0.0
			for c := range a {
				want += (a[c] - b[c]) * (a[c] - b[c])
			}
			if got := d2.Eval(tm); math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("d²(%v) = %v, want %v", tm, got, want)
			}
		}
	}
}

func TestDistSqDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPoint(poly.New(1)).DistSq(NewPoint(poly.New(1), poly.New(2)))
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil); err == nil {
		t.Error("empty system accepted")
	}
	_, err := NewSystem([]Point{
		NewPoint(poly.New(1), poly.New(2)),
		NewPoint(poly.New(1)),
	})
	if err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Same initial position violates §2.4.
	_, err = NewSystem([]Point{
		NewPoint(poly.New(1, 5), poly.New(2)),
		NewPoint(poly.New(1, -3), poly.New(2, 1)),
	})
	if err == nil {
		t.Error("shared initial position accepted")
	}
}

func TestRandomSystemProperties(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	s := Random(r, 20, 2, 2, 10)
	if s.N() != 20 || s.K > 2 || s.D != 2 {
		t.Fatalf("system: n=%d k=%d d=%d", s.N(), s.K, s.D)
	}
	cs, ids := s.DistSqCurves(3)
	if len(cs) != 19 || len(ids) != 19 {
		t.Fatalf("DistSqCurves sizes: %d, %d", len(cs), len(ids))
	}
	for _, id := range ids {
		if id == 3 {
			t.Fatal("origin included in its own neighbour curves")
		}
	}
	xs := s.CoordCurves(0)
	if len(xs) != 20 {
		t.Fatalf("CoordCurves size %d", len(xs))
	}
}

func TestConvergingCollides(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	s := Converging(r, 10)
	// Every point passes through the origin at some positive time.
	for i, p := range s.Points {
		x := p.Coord[0]
		roots := x.RootsNonNeg()
		if len(roots) == 0 && math.Abs(x.Eval(0)) > 1e-12 {
			t.Fatalf("point %d never reaches x=0: %v", i, x)
		}
	}
}

func TestOnCircleAllExtreme(t *testing.T) {
	s := OnCircle(12, 5)
	if s.K != 0 {
		t.Fatalf("OnCircle K = %d", s.K)
	}
	for _, p := range s.Points {
		pos := p.At(0)
		rad := math.Hypot(pos[0], pos[1])
		if math.Abs(rad-5) > 1e-9 {
			t.Fatalf("point off circle: %v (r=%v)", pos, rad)
		}
	}
}

func TestDivergingDistinctDirections(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	s := Diverging(r, 16)
	seen := map[[2]float64]bool{}
	for _, p := range s.Points {
		v := [2]float64{p.Coord[0].Coef(1), p.Coord[1].Coef(1)}
		if seen[v] {
			t.Fatalf("duplicate velocity %v", v)
		}
		seen[v] = true
		if math.Abs(math.Hypot(v[0], v[1])-1) > 1e-9 {
			t.Fatalf("velocity not unit: %v", v)
		}
	}
}

func TestSteadyProjection(t *testing.T) {
	p := NewPoint(poly.New(3, 1), poly.New(7))
	sx := p.Steady(0)
	sy := p.Steady(1)
	if sx.Cmp(sy) != 1 {
		t.Fatal("3+t should exceed 7 at infinity")
	}
}

func TestAngleTo(t *testing.T) {
	p := NewPoint(poly.New(0), poly.New(0))
	q := NewPoint(poly.New(1), poly.New(0, 1))
	a := p.AngleTo(q)
	if got := a.Eval(0); got != 0 {
		t.Fatalf("angle at t=0 = %v, want 0", got)
	}
	if got := a.Eval(1); math.Abs(got-math.Pi/4) > 1e-12 {
		t.Fatalf("angle at t=1 = %v, want π/4", got)
	}
}
