package pgeom

import (
	"math"
	"testing"

	"dyncg/internal/geom"
	"dyncg/internal/ratfun"
)

// TestHullStaticCircle: every point on a circle is extreme — the classic
// all-extreme stress case (motion.OnCircle); the dual-envelope hull must
// recover all n vertices despite the mirror-symmetric x-coordinates.
func TestHullStaticCircle(t *testing.T) {
	for _, n := range []int{128, 512, 1024} {
		pts := make([]geom.Point[ratfun.F64], n)
		for i := range pts {
			th := 2 * math.Pi * float64(i) / float64(n)
			pts[i] = geom.Point[ratfun.F64]{X: ratfun.F64(math.Cos(th)), Y: ratfun.F64(math.Sin(th)), ID: i}
		}
		m := cubeFor(2 * n)
		got, err := HullStatic(m, pts)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		exact := geom.Hull(pts)
		if len(got) != len(exact) {
			t.Fatalf("n=%d: hull %d vertices, want %d", n, len(got), len(exact))
		}
	}
}
