package pgeom

import (
	"math/rand"
	"testing"

	"dyncg/internal/dsseq"
	"dyncg/internal/geom"
	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/mesh"
	"dyncg/internal/poly"
	"dyncg/internal/ratfun"
)

func meshFor(n int) *machine.M {
	return machine.New(mesh.MustNew(dsseq.NextPow4(4*n), mesh.Proximity))
}
func cubeFor(n int) *machine.M {
	return machine.New(hypercube.MustNew(dsseq.NextPow2(4 * n)))
}

func fpts(r *rand.Rand, n int) []geom.Point[ratfun.F64] {
	pts := make([]geom.Point[ratfun.F64], n)
	for i := range pts {
		pts[i] = geom.Point[ratfun.F64]{
			X: ratfun.F64(r.NormFloat64() * 10), Y: ratfun.F64(r.NormFloat64() * 10), ID: i,
		}
	}
	return pts
}

func rpts(r *rand.Rand, n, k int) []geom.Point[ratfun.RatFun] {
	pts := make([]geom.Point[ratfun.RatFun], n)
	for i := range pts {
		mk := func() ratfun.RatFun {
			c := make([]float64, k+1)
			for j := range c {
				c[j] = r.NormFloat64() * 4
			}
			return ratfun.FromPoly(poly.New(c...))
		}
		pts[i] = geom.Point[ratfun.RatFun]{X: mk(), Y: mk(), ID: i}
	}
	return pts
}

func hullIDSet(h []geom.Point[ratfun.F64]) map[int]bool {
	s := map[int]bool{}
	for _, p := range h {
		s[p.ID] = true
	}
	return s
}

// TestHullStaticMatchesSerial: parallel dual-envelope hull equals the
// serial monotone chain, in membership and CCW order, on both topologies.
func TestHullStaticMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(40)
		pts := fpts(r, n)
		want := geom.Hull(pts)
		for _, m := range []*machine.M{meshFor(n), cubeFor(n)} {
			got, err := HullStatic(m, pts)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: hull size %d, want %d (%v)",
					trial, m.Topology().Name(), len(got), len(want), got)
			}
			wantSet := hullIDSet(want)
			for _, id := range got {
				if !wantSet[id] {
					t.Fatalf("trial %d: spurious hull vertex %d", trial, id)
				}
			}
			// CCW: find the rotation aligning got with want.
			start := -1
			for i, p := range want {
				if p.ID == got[0] {
					start = i
				}
			}
			if start < 0 {
				t.Fatalf("trial %d: got[0]=%d not in serial hull", trial, got[0])
			}
			for i := range got {
				if got[i] != want[(start+i)%len(want)].ID {
					t.Fatalf("trial %d: order mismatch: got %v want rotation of %v",
						trial, got, want)
				}
			}
		}
	}
}

func TestHullStaticDegenerate(t *testing.T) {
	m := cubeFor(4)
	// Duplicates and collinear points.
	pts := []geom.Point[ratfun.F64]{
		{X: 0, Y: 0, ID: 0}, {X: 0, Y: 0, ID: 1},
		{X: 2, Y: 2, ID: 2}, {X: 1, Y: 1, ID: 3},
	}
	got, err := HullStatic(m, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("collinear hull = %v", got)
	}
}

// TestHullSteadyMatchesSerial: the Las-Vegas steady-state hull equals the
// exact serial hull over the rational-function field.
func TestHullSteadyMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	for trial := 0; trial < 25; trial++ {
		n := 3 + r.Intn(16)
		pts := rpts(r, n, 1+r.Intn(2))
		want := geom.Hull(pts)
		m := cubeFor(n)
		got, err := HullSteady(m, pts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: hull size %d, want %d", trial, len(got), len(want))
		}
		wantSet := map[int]bool{}
		for _, p := range want {
			wantSet[p.ID] = true
		}
		for _, id := range got {
			if !wantSet[id] {
				t.Fatalf("trial %d: spurious steady hull vertex %d", trial, id)
			}
		}
	}
}

func TestNearestNeighborMachine(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(30)
		pts := fpts(r, n)
		origin := r.Intn(n)
		for _, m := range []*machine.M{meshFor(n), cubeFor(n)} {
			got := NearestNeighbor(m, pts, origin, false)
			// Serial oracle (excluding origin).
			var rest []geom.Point[ratfun.F64]
			for i, p := range pts {
				if i != origin {
					rest = append(rest, p)
				}
			}
			want := rest[geom.NearestTo(rest, pts[origin])].ID
			wd := geom.DistSq(pts[want], pts[origin])
			gd := geom.DistSq(pts[got], pts[origin])
			if gd.Cmp(wd) != 0 {
				t.Fatalf("trial %d: nearest %d (d²=%v), want %d (d²=%v)",
					trial, got, gd, want, wd)
			}
			gotF := NearestNeighbor(m, pts, origin, true)
			wantF := rest[geom.FarthestFrom(rest, pts[origin])].ID
			if geom.DistSq(pts[gotF], pts[origin]).Cmp(geom.DistSq(pts[wantF], pts[origin])) != 0 {
				t.Fatalf("trial %d: farthest mismatch", trial)
			}
		}
	}
}

func TestSteadyNearestNeighbor(t *testing.T) {
	// Static point beats diverging points in the steady state.
	mk := func(x, y poly.Poly, id int) geom.Point[ratfun.RatFun] {
		return geom.Point[ratfun.RatFun]{X: ratfun.FromPoly(x), Y: ratfun.FromPoly(y), ID: id}
	}
	pts := []geom.Point[ratfun.RatFun]{
		mk(poly.New(0), poly.New(0), 0),      // origin
		mk(poly.New(100), poly.New(0), 1),    // static at distance 100
		mk(poly.New(1, 2), poly.New(0), 2),   // escapes
		mk(poly.New(2, 0.5), poly.New(0), 3), // escapes slowly
	}
	m := cubeFor(len(pts))
	if got := NearestNeighbor(m, pts, 0, false); got != 1 {
		t.Fatalf("steady nearest = %d, want 1", got)
	}
	if got := NearestNeighbor(m, pts, 0, true); got != 2 {
		t.Fatalf("steady farthest = %d, want 2", got)
	}
}

// TestClosestPairMatchesSerial on both topologies and both fields.
func TestClosestPairMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(84))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(50)
		pts := fpts(r, n)
		_, _, want := geom.ClosestPair(pts)
		for _, m := range []*machine.M{meshFor(n), cubeFor(n)} {
			a, b, got := ClosestPair(m, pts)
			if a == b {
				t.Fatalf("trial %d: degenerate pair", trial)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("trial %d %s: d²=%v, want %v", trial, m.Topology().Name(), got, want)
			}
			if geom.DistSq(pts[a], pts[b]).Cmp(got) != 0 {
				t.Fatalf("trial %d: pair does not realise distance", trial)
			}
		}
	}
}

func TestSteadyClosestPair(t *testing.T) {
	r := rand.New(rand.NewSource(85))
	for trial := 0; trial < 15; trial++ {
		n := 2 + r.Intn(12)
		pts := rpts(r, n, 1)
		_, _, want := geom.ClosestPair(pts)
		m := cubeFor(n)
		_, _, got := ClosestPair(m, pts)
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d: steady d² mismatch: %v vs %v", trial, got, want)
		}
	}
}

// TestAntipodalMatchesSerial: machine antipodal pairs = serial oracle.
func TestAntipodalMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(86))
	for trial := 0; trial < 30; trial++ {
		pts := fpts(r, 4+r.Intn(30))
		hull := geom.Hull(pts)
		if len(hull) < 3 {
			continue
		}
		m := cubeFor(len(pts))
		got := AntipodalPairs(m, hull)
		want := geom.AntipodalPairs(hull)
		wantSet := map[[2]int]bool{}
		for _, p := range want {
			wantSet[p] = true
		}
		// Every machine pair must be genuinely antipodal...
		for _, p := range got {
			if !wantSet[p] {
				t.Fatalf("trial %d: pair %v not antipodal (hull %v)", trial, p, hull)
			}
		}
		// ...and the diameter must be realised among them (the property
		// Proposition 5.6 needs).
		wantD, _ := geom.Diameter(hull)
		bestG := geom.DistSq(hull[got[0][0]], hull[got[0][1]])
		for _, p := range got[1:] {
			if d := geom.DistSq(hull[p[0]], hull[p[1]]); d.Cmp(bestG) > 0 {
				bestG = d
			}
		}
		if bestG.Cmp(wantD) != 0 {
			t.Fatalf("trial %d: machine antipodal pairs miss the diameter: %v vs %v",
				trial, bestG, wantD)
		}
	}
}

func TestDiameterAndFarthestPair(t *testing.T) {
	r := rand.New(rand.NewSource(87))
	for trial := 0; trial < 25; trial++ {
		pts := fpts(r, 4+r.Intn(30))
		hull := geom.Hull(pts)
		if len(hull) < 3 {
			continue
		}
		m := meshFor(len(pts))
		got, _ := Diameter(m, hull)
		want, _ := geom.Diameter(hull)
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d: diameter² %v, want %v", trial, got, want)
		}
		// FarthestPair over the raw points.
		hullIdx := make([]int, len(hull))
		for i := range hull {
			hullIdx[i] = hull[i].ID
		}
		a, b, d2 := FarthestPair(m, pts, hullIdx)
		if d2.Cmp(want) != 0 || geom.DistSq(pts[a], pts[b]).Cmp(want) != 0 {
			t.Fatalf("trial %d: farthest pair mismatch", trial)
		}
	}
}

func TestMinAreaRectMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	for trial := 0; trial < 25; trial++ {
		pts := fpts(r, 4+r.Intn(30))
		hull := geom.Hull(pts)
		if len(hull) < 3 {
			continue
		}
		m := cubeFor(len(pts))
		got := MinAreaRect(m, hull)
		want := geom.MinAreaRect(hull)
		// Areas must agree exactly: both consider one rectangle per edge.
		if got.Area.Cmp(want.Area) != 0 {
			t.Fatalf("trial %d: area %v, want %v (edges %d vs %d)",
				trial, got.Area, want.Area, got.Edge, want.Edge)
		}
	}
}

// TestSteadyMinAreaRect: RatFun instantiation (Corollary 5.9).
func TestSteadyMinAreaRect(t *testing.T) {
	r := rand.New(rand.NewSource(89))
	for trial := 0; trial < 10; trial++ {
		pts := rpts(r, 4+r.Intn(10), 1)
		hull := geom.Hull(pts)
		if len(hull) < 3 {
			continue
		}
		m := cubeFor(len(pts))
		got := MinAreaRect(m, hull)
		want := geom.MinAreaRect(hull)
		if got.Area.Cmp(want.Area) != 0 {
			t.Fatalf("trial %d: steady area mismatch: %v vs %v", trial, got.Area, want.Area)
		}
	}
}

// TestTable4CostShape: all four static algorithms are sort-bounded —
// Θ(√n) mesh (ratio ≈2 per quadrupling) and polylog hypercube.
func TestTable4CostShape(t *testing.T) {
	r := rand.New(rand.NewSource(90))
	sizes := []int{32, 128, 512}
	var hullT, cpT []float64
	for _, n := range sizes {
		pts := fpts(r, n)
		m := meshFor(n)
		if _, err := HullStatic(m, pts); err != nil {
			t.Fatal(err)
		}
		hullT = append(hullT, float64(m.Stats().Time()))
		m2 := meshFor(n)
		ClosestPair(m2, pts)
		cpT = append(cpT, float64(m2.Stats().Time()))
	}
	for i := 1; i < len(sizes); i++ {
		if ratio := hullT[i] / hullT[i-1]; ratio > 3.2 {
			t.Errorf("mesh hull not Θ(√n): %v", hullT)
		}
		if ratio := cpT[i] / cpT[i-1]; ratio > 3.2 {
			t.Errorf("mesh closest pair not Θ(√n): %v", cpT)
		}
	}
}
