package pgeom

import (
	"strconv"

	"dyncg/internal/geom"
	"dyncg/internal/machine"
	"dyncg/internal/par"
	"dyncg/internal/ratfun"
)

// pairCand is a candidate closest pair held in a PE register.
type pairCand[T ratfun.Real[T]] struct {
	a, b int
	d    T
}

// ClosestPair finds a closest pair of pts on the machine by sort-bounded
// divide and conquer — the static algorithm behind Proposition 5.3
// (standing in for [Miller and Stout 1989a] / [Sanz and Cypher 1987], see
// DESIGN.md). It is generic over the ordered field: at F64 it solves the
// static problem, at RatFun the steady-state problem, per Lemma 5.1.
//
// Structure: one global sort by x assigns x-partitioned aligned blocks;
// bottom-up, a second register file is kept y-sorted per block with one
// bitonic merge per level (the classic D&C invariant), the strip around
// each block's x-split is compacted, and each strip point is compared
// with its ≤ 7 successors using constant shift rounds. By induction every
// block ends each level knowing its exact closest pair, so the strip
// argument applies. Total cost Θ(sort): Θ(√n) mesh, Θ(log² n) hypercube.
func ClosestPair[T ratfun.Real[T]](m *machine.M, pts []geom.Point[T]) (a, b int, d2 T) {
	if len(pts) < 2 {
		panic("pgeom: ClosestPair needs at least two points")
	}
	if m.Observed() {
		m.SpanBegin("closest-pair", "n", strconv.Itoa(len(pts)))
		defer m.SpanEnd()
	}
	n := m.Size()
	lessX := func(x, y geom.Point[T]) bool {
		if c := x.X.Cmp(y.X); c != 0 {
			return c < 0
		}
		if c := x.Y.Cmp(y.Y); c != 0 {
			return c < 0
		}
		return x.ID < y.ID
	}
	lessY := func(x, y geom.Point[T]) bool {
		if c := x.Y.Cmp(y.Y); c != 0 {
			return c < 0
		}
		if c := x.X.Cmp(y.X); c != 0 {
			return c < 0
		}
		return x.ID < y.ID
	}
	// Points with IDs = indices into pts.
	tagged := make([]geom.Point[T], len(pts))
	for i, p := range pts {
		p.ID = i
		tagged[i] = p
	}
	byX := machine.Scatter(n, tagged)
	machine.Sort(m, byX, lessX)
	byY := machine.GetScratch[machine.Reg[geom.Point[T]]](m, n)
	defer machine.PutScratch(m, byY)
	copy(byY, byX) // blocks of size 1 are trivially y-sorted
	best := machine.GetScratch[machine.Reg[pairCand[T]]](m, n)
	defer machine.PutScratch(m, best)

	minPair := func(x, y pairCand[T]) pairCand[T] {
		if x.d.Cmp(y.d) <= 0 {
			return x
		}
		return y
	}

	// Per-level scratch: one set of buffers checked out for the whole
	// divide-and-conquer, refilled each level.
	seg := machine.GetScratch[bool](m, n)
	defer machine.PutScratch(m, seg)
	half := machine.GetScratch[bool](m, n)
	defer machine.PutScratch(m, half)
	xs := machine.GetScratch[machine.Reg[T]](m, n)
	defer machine.PutScratch(m, xs)
	split := machine.GetScratch[machine.Reg[T]](m, n)
	defer machine.PutScratch(m, split)
	delta := machine.GetScratch[machine.Reg[pairCand[T]]](m, n)
	defer machine.PutScratch(m, delta)
	strip := machine.GetScratch[machine.Reg[geom.Point[T]]](m, n)
	defer machine.PutScratch(m, strip)

	for block := 2; block <= n; block *= 2 {
		clear(seg)
		clear(half)
		for i := 0; i < n; i += block {
			seg[i] = true
		}
		for i := 0; i < n; i += block / 2 {
			half[i] = true
		}

		// Maintain the y-sorted invariant.
		machine.MergeBlocks(m, byY, block, lessY)

		// Split abscissa: max X over each left half-block, spread right.
		clear(xs)
		m.ChargeLocal(1)
		par.ForEach(m.Workers(), n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if byX[i].Ok {
					xs[i] = machine.Some(byX[i].V.X)
				}
			}
		})
		machine.Semigroup(m, xs, half, func(p, q T) T {
			if p.Cmp(q) >= 0 {
				return p
			}
			return q
		})
		clear(split)
		m.ChargeLocal(1)
		par.ForEach(m.Workers(), n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if xs[i].Ok && (i/(block/2))%2 == 0 {
					split[i] = machine.Some(xs[i].V)
				}
			}
		})
		machine.Spread(m, split, seg)

		// Block δ so far (exact within each half, by induction).
		copy(delta, best)
		machine.Semigroup(m, delta, seg, minPair)

		// Strip membership and compaction.
		clear(strip)
		m.ChargeLocal(1)
		par.ForEach(m.Workers(), n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if !byY[i].Ok || !split[i].Ok {
					continue
				}
				p := byY[i].V
				dx := p.X.Sub(split[i].V)
				if !delta[i].Ok || dx.Mul(dx).Cmp(delta[i].V.d) < 0 {
					strip[i] = machine.Some(p)
				}
			}
		})
		machine.Compact(m, strip, seg)

		// Compare each strip point with its ≤ 7 successors. Each shift
		// draws a fresh arena buffer; the previous one is released as
		// soon as the next supersedes it (strip itself stays checked out
		// for the whole level).
		cur := strip
		for k := 0; k < 7; k++ {
			next := machine.ShiftWithin(m, cur, block, -1)
			if k > 0 {
				machine.PutScratch(m, cur)
			}
			cur = next
			m.ChargeLocal(1)
			cur := cur
			par.ForEach(m.Workers(), n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if !strip[i].Ok || !cur[i].Ok {
						continue
					}
					d := geom.DistSq(strip[i].V, cur[i].V)
					cand := pairCand[T]{a: strip[i].V.ID, b: cur[i].V.ID, d: d}
					if !best[i].Ok || d.Cmp(best[i].V.d) < 0 {
						best[i] = machine.Some(cand)
					}
				}
			})
		}
		machine.PutScratch(m, cur)
	}
	clear(seg)
	if n > 0 {
		seg[0] = true
	}
	machine.Semigroup(m, best, seg, minPair)
	for i := range best {
		if best[i].Ok {
			return best[i].V.a, best[i].V.b, best[i].V.d
		}
	}
	panic("pgeom: ClosestPair found no candidate")
}
