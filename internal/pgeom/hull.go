package pgeom

import (
	"fmt"
	"math"
	"strconv"

	"dyncg/internal/curve"
	"dyncg/internal/geom"
	"dyncg/internal/machine"
	"dyncg/internal/par"
	"dyncg/internal/penvelope"
	"dyncg/internal/pieces"
	"dyncg/internal/poly"
	"dyncg/internal/ratfun"
)

// HullStatic computes the extreme points of hull(pts) in counterclockwise
// order on the machine, for static (float) points, via point–line duality:
// the upper (lower) hull is the upper (lower) envelope of the dual lines
// g_j(m) = b_j − m·a_j of the points (a_j, b_j), so the whole computation
// reuses Theorem 3.2's envelope machinery with s = 1 — one sort-bounded
// pass, Θ(√n) mesh / Θ(log² n) hypercube, matching the Table 4 hull row.
//
// The returned slice holds the IDs of the extreme points in CCW order
// starting from the lexicographically smallest point.
func HullStatic(m *machine.M, pts []geom.Point[ratfun.F64]) ([]int, error) {
	n := len(pts)
	if n == 0 {
		return nil, nil
	}
	if n == 1 {
		return []int{pts[0].ID}, nil
	}
	if m.Observed() {
		m.SpanBegin("hull-static", "n", strconv.Itoa(n))
		defer m.SpanEnd()
	}
	// Dedupe coincident points (they would give identical dual lines and
	// the envelope would keep one, but the CCW stitch below wants a clean
	// point set). One sort-bounded pass.
	uniq := dedupe(m, pts)
	if len(uniq) == 1 {
		return []int{uniq[0].ID}, nil
	}
	// Normalise coordinates to O(1) scale (translation and uniform
	// scaling preserve the hull and its CCW order): the dual transform
	// forms b + a·B below, which would otherwise lose the low-order
	// coordinate differences when positions are large — e.g. when
	// HullSteady probes at a late time. Two semigroups (Θ(1) rounds).
	uniq = normalize(m, uniq)
	// Slope bound B: all transition slopes between points are convex
	// combinations of consecutive slopes in x-order, so a semigroup over
	// consecutive pairs bounds them (computed with one sort + one shift +
	// one semigroup).
	b := slopeBound(m, uniq)

	// Dual lines over the shifted parameter u = m + B ∈ [0, 2B].
	lines := make([]curve.Curve, len(uniq))
	for i, p := range uniq {
		a, bb := float64(p.X), float64(p.Y)
		lines[i] = curve.NewPoly(poly.New(bb+a*b, -a))
	}
	lower, err := penvelope.EnvelopeOfCurves(m, lines, pieces.Min)
	if err != nil {
		return nil, err
	}
	upper, err := penvelope.EnvelopeOfCurves(m, lines, pieces.Max)
	if err != nil {
		return nil, err
	}
	// Lower envelope visits the lower hull left→right; upper envelope
	// visits the upper hull right→left. Concatenate, dropping the shared
	// endpoints, for the CCW order. (The reversal/stitch is a Θ(1)-round
	// route on the machine; performed here on the gathered IDs.)
	lo, up := lower.IDs(), upper.IDs()
	cand := append([]int{}, lo...)
	seen := make(map[int]bool, len(lo))
	for _, id := range lo {
		seen[id] = true
	}
	for _, id := range up {
		if !seen[id] {
			seen[id] = true
			cand = append(cand, id)
		}
	}
	// Seam cleanup: points within float noise of the extreme x can
	// surface on both chains, in ambiguous order. The candidate set is
	// h + O(1) points; one more sort-bounded machine pass (charged here)
	// plus the exact chain scan over the candidates restores the clean
	// CCW cycle.
	sortRegs := machine.Scatter(m.Size(), cand)
	machine.Sort(m, sortRegs, func(a, b int) bool { return a < b })
	candPts := make([]geom.Point[ratfun.F64], len(cand))
	for i, j := range cand {
		candPts[i] = uniq[j]
	}
	m.ChargeLocal(1)
	clean := geom.Hull(candPts)
	out := make([]int, len(clean))
	for i, p := range clean {
		out[i] = p.ID
	}
	return out, nil
}

// dedupe removes coincident points via one machine sort and a shift
// round.
func dedupe(m *machine.M, pts []geom.Point[ratfun.F64]) []geom.Point[ratfun.F64] {
	n := m.Size()
	regs := machine.GetScratch[machine.Reg[geom.Point[ratfun.F64]]](m, n)
	defer machine.PutScratch(m, regs)
	for i, p := range pts {
		regs[i] = machine.Some(p)
	}
	machine.Sort(m, regs, func(a, b geom.Point[ratfun.F64]) bool {
		if a.X != b.X {
			return a.X < b.X
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.ID < b.ID
	})
	prev := machine.ShiftWithin(m, regs, n, +1)
	m.ChargeLocal(1)
	par.ForEach(m.Workers(), n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if regs[i].Ok && prev[i].Ok &&
				prev[i].V.X == regs[i].V.X && prev[i].V.Y == regs[i].V.Y {
				regs[i] = machine.None[geom.Point[ratfun.F64]]()
			}
		}
	})
	machine.PutScratch(m, prev)
	seg := machine.GetScratch[bool](m, n)
	if n > 0 {
		seg[0] = true
	}
	machine.Compact(m, regs, seg)
	machine.PutScratch(m, seg)
	return machine.Gather(regs)
}

// normalize maps the points rigidly+affinely into O(1) scale: a fixed
// rotation (which breaks accidental axis alignments such as the mirror
// symmetry of points sampled on a circle, whose float-asymmetric cosines
// would otherwise produce ~1e−16 x-gaps and a ~1e16 slope bound),
// followed by bounding-box centring and uniform scaling. All three maps
// preserve the hull and its CCW order. One semigroup plus Θ(1) local
// work per PE.
func normalize(m *machine.M, pts []geom.Point[ratfun.F64]) []geom.Point[ratfun.F64] {
	const rot = 0.5 // radians; any fixed generic angle
	cosR, sinR := math.Cos(rot), math.Sin(rot)
	rotated := make([]geom.Point[ratfun.F64], len(pts))
	m.ChargeLocal(1)
	par.ForEach(m.Workers(), len(pts), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x, y := float64(pts[i].X), float64(pts[i].Y)
			rotated[i] = geom.Point[ratfun.F64]{
				X:  ratfun.F64(x*cosR - y*sinR),
				Y:  ratfun.F64(x*sinR + y*cosR),
				ID: pts[i].ID,
			}
		}
	})
	pts = rotated
	n := m.Size()
	regs := machine.GetScratch[machine.Reg[bbox]](m, n)
	defer machine.PutScratch(m, regs)
	m.ChargeLocal(1)
	for i, p := range pts {
		x, y := float64(p.X), float64(p.Y)
		regs[i] = machine.Some(bbox{x, x, y, y})
	}
	seg := machine.GetScratch[bool](m, n)
	defer machine.PutScratch(m, seg)
	if n > 0 {
		seg[0] = true
	}
	machine.Semigroup(m, regs, seg, func(a, b bbox) bbox {
		return bbox{
			minX: math.Min(a.minX, b.minX), maxX: math.Max(a.maxX, b.maxX),
			minY: math.Min(a.minY, b.minY), maxY: math.Max(a.maxY, b.maxY),
		}
	})
	var bb bbox
	for i := range regs {
		if regs[i].Ok {
			bb = regs[i].V
			break
		}
	}
	cx, cy := (bb.minX+bb.maxX)/2, (bb.minY+bb.maxY)/2
	scale := math.Max(bb.maxX-bb.minX, bb.maxY-bb.minY) / 2
	if scale == 0 {
		scale = 1
	}
	m.ChargeLocal(1)
	out := make([]geom.Point[ratfun.F64], len(pts))
	par.ForEach(m.Workers(), len(pts), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = geom.Point[ratfun.F64]{
				X:  ratfun.F64((float64(pts[i].X) - cx) / scale),
				Y:  ratfun.F64((float64(pts[i].Y) - cy) / scale),
				ID: pts[i].ID,
			}
		}
	})
	return out
}

// bbox is the bounding-box accumulator of normalize's semigroup.
type bbox struct{ minX, maxX, minY, maxY float64 }

// slopeBound returns 1 + the maximum |slope| between consecutive x-sorted
// points (which bounds every pairwise slope).
func slopeBound(m *machine.M, pts []geom.Point[ratfun.F64]) float64 {
	n := m.Size()
	regs := machine.GetScratch[machine.Reg[geom.Point[ratfun.F64]]](m, n)
	defer machine.PutScratch(m, regs)
	for i, p := range pts {
		regs[i] = machine.Some(p)
	}
	machine.Sort(m, regs, func(a, b geom.Point[ratfun.F64]) bool {
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	prev := machine.ShiftWithin(m, regs, n, +1)
	slopes := machine.GetScratch[machine.Reg[float64]](m, n)
	defer machine.PutScratch(m, slopes)
	m.ChargeLocal(1)
	par.ForEach(m.Workers(), n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !regs[i].Ok || !prev[i].Ok {
				continue
			}
			dx := float64(regs[i].V.X - prev[i].V.X)
			dy := float64(regs[i].V.Y - prev[i].V.Y)
			if math.Abs(dx) <= 1e-9 {
				// (Near-)vertical in normalised coordinates: exact duplicates
				// of x give parallel dual lines (handled by the envelope);
				// sub-1e-9 gaps are below the method's float resolution and
				// would only blow up the slope bound.
				continue
			}
			slopes[i] = machine.Some(math.Abs(dy / dx))
		}
	})
	machine.PutScratch(m, prev)
	seg := machine.GetScratch[bool](m, n)
	defer machine.PutScratch(m, seg)
	if n > 0 {
		seg[0] = true
	}
	machine.Semigroup(m, slopes, seg, math.Max)
	best := 1.0
	for i := range slopes {
		if slopes[i].Ok && slopes[i].V+1 > best {
			best = slopes[i].V + 1
		}
	}
	return best
}

// HullSteady computes the steady-state hull(S) of Proposition 5.4 for a
// system of moving points given by their coordinate limits (RatFun
// points). It is a Las-Vegas reduction to the static algorithm: evaluate
// the trajectories at a probe time T (Θ(1) local work), run HullStatic,
// and verify the candidate with *exact* steady-state predicates — every
// consecutive triple must turn left at t → ∞ and every point must lie
// inside or on the candidate at t → ∞ (a sort-based grouping). On
// failure, double T and repeat; for polynomial motion the predicates
// stabilise beyond the largest critical root, so the expected number of
// rounds is small — in the same spirit as the paper's "expected" rows for
// [Reif and Valiant 1987] sorting. A bounded retry budget falls back to
// the exact serial algorithm (never observed in tests; the fallback keeps
// the API total).
func HullSteady(m *machine.M, pts []geom.Point[ratfun.RatFun]) ([]int, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	if len(pts) == 1 {
		return []int{pts[0].ID}, nil
	}
	if m.Observed() {
		m.SpanBegin("hull-steady", "n", strconv.Itoa(len(pts)))
		defer m.SpanEnd()
	}
	T := initialProbeTime(pts)
	for round := 0; round < 60 && T < 1e12; round++ {
		static := make([]geom.Point[ratfun.F64], len(pts))
		for i, p := range pts {
			static[i] = geom.Point[ratfun.F64]{
				X:  ratfun.F64(p.X.Eval(T)),
				Y:  ratfun.F64(p.Y.Eval(T)),
				ID: i,
			}
		}
		m.ChargeLocal(1) // the evaluations: Θ(1) per PE
		cand, err := HullStatic(m, static)
		if err != nil {
			return nil, err
		}
		ok, needT := verifySteadyHull(m, pts, cand)
		if ok {
			out := make([]int, len(cand))
			for i, j := range cand {
				out[i] = pts[j].ID
			}
			return out, nil
		}
		// A failing exact predicate names the polynomial whose sign had
		// not yet stabilised at T; jump past its last possible root.
		next := 2 * T
		if needT+1 > next {
			next = needT + 1
		}
		T = next
	}
	// Exact fallback (serial): sound, used only if probing kept failing.
	h := geom.Hull(pts)
	out := make([]int, len(h))
	for i, p := range h {
		out[i] = p.ID
	}
	return out, fmt.Errorf("pgeom: steady hull fell back to serial after probe failures")
}

// initialProbeTime picks a probe time past the scale of the coefficients.
func initialProbeTime(pts []geom.Point[ratfun.RatFun]) float64 {
	t := 2.0
	for _, p := range pts {
		for _, rf := range []ratfun.RatFun{p.X, p.Y} {
			if b := rf.Num.CauchyRootBound(); b+1 > t {
				t = b + 1
			}
		}
	}
	return t
}

// verifySteadyHull checks a candidate CCW hull (indices into pts) with
// exact t → ∞ predicates, using machine operations so the verification is
// itself sort-bounded parallel work. On failure it also reports a probe
// time sufficient for the violated predicate to have stabilised (the
// Cauchy root bound of its numerator polynomial).
func verifySteadyHull(m *machine.M, pts []geom.Point[ratfun.RatFun], cand []int) (bool, float64) {
	h := len(cand)
	if h < 2 {
		// A single extreme point can only be right if all points coincide
		// at infinity — verify directly.
		for _, p := range pts {
			if geom.DistSq(p, pts[cand[0]]).Sign() != 0 {
				return false, 0
			}
		}
		return true, 0
	}
	if h == 2 {
		// Everything must be on the segment's line and between endpoints
		// eventually; delegate to the exact serial hull for this rare
		// degenerate shape.
		exact := geom.Hull(pts)
		return len(exact) == 2, 0
	}
	// (a) Consecutive triples turn strictly left at infinity: one shift
	// round each way plus a Θ(1) local predicate per hull PE.
	m.ChargeLocal(1)
	for i := 0; i < h; i++ {
		a, b, c := pts[cand[i]], pts[cand[(i+1)%h]], pts[cand[(i+2)%h]]
		if geom.Orient(a, b, c) <= 0 {
			return false, predBound(geom.Cross(b.Sub(a), c.Sub(a)))
		}
	}
	// (b) Every point lies inside or on the candidate at infinity:
	// sector grouping around an interior reference point O (centroid of
	// three hull vertices), one sort + scans, then Θ(1) local tests.
	o := centroid3(pts[cand[0]], pts[cand[h/3]], pts[cand[2*h/3]])
	type entry struct {
		dir      geom.Point[ratfun.RatFun]
		boundary bool
		hullPos  int // for boundaries: position in cand
		ptIdx    int // for queries: index into pts
	}
	n := m.Size()
	if h+len(pts) > n {
		// Not enough PEs to co-locate boundaries and queries; the callers
		// size machines at Θ(n) with constant slack, so treat as failure
		// of the probe (forces the serial fallback path eventually).
		return verifySteadySerial(pts, cand, o), 0
	}
	entries := machine.GetScratch[machine.Reg[entry]](m, n)
	defer machine.PutScratch(m, entries)
	for i := 0; i < h; i++ {
		entries[i] = machine.Some(entry{
			dir: pts[cand[i]].Sub(o), boundary: true, hullPos: i, ptIdx: -1,
		})
	}
	for i, p := range pts {
		entries[h+i] = machine.Some(entry{dir: p.Sub(o), boundary: false, hullPos: -1, ptIdx: i})
	}
	machine.Sort(m, entries, func(a, b entry) bool {
		if !DirEq(a.dir, b.dir) {
			return DirLess(a.dir, b.dir)
		}
		// Boundaries before queries at equal directions, so the scan
		// assigns a vertex-aligned query to its own sector start.
		if a.boundary != b.boundary {
			return a.boundary
		}
		return false
	})
	// Forward scan: latest boundary position; wrap via global last.
	// lastB is self-contained scratch — native columnar, no split/join.
	lastB := machine.GetCols[int](m, n)
	defer machine.PutCols(m, lastB)
	m.ChargeLocal(1)
	for i := range entries {
		if entries[i].Ok && entries[i].V.boundary {
			lastB.Set(i, entries[i].V.hullPos)
		}
	}
	seg := machine.GetScratch[bool](m, n)
	if n > 0 {
		seg[0] = true
	}
	machine.ScanCols(m, lastB, seg, machine.Forward,
		func(a, b int) int { return b })
	machine.PutScratch(m, seg)
	globalLast := machine.Some(-1)
	for i := n - 1; i >= 0; i-- {
		if lastB.Occ[i] {
			globalLast = machine.Some(lastB.Val[i])
			break
		}
	}
	m.ChargeLocal(1)
	for i := range entries {
		if !entries[i].Ok || entries[i].V.boundary {
			continue
		}
		sector := -1
		if lastB.Occ[i] {
			sector = lastB.Val[i]
		} else if globalLast.Ok {
			sector = globalLast.V
		}
		if sector < 0 {
			return false, 0
		}
		a := pts[cand[sector]]
		b := pts[cand[(sector+1)%h]]
		p := pts[entries[i].V.ptIdx]
		if geom.Orient(a, b, p) < 0 {
			return false, predBound(geom.Cross(b.Sub(a), p.Sub(a)))
		}
	}
	return true, 0
}

// predBound returns a time beyond which the sign of the rational
// predicate is settled: past the root bounds of numerator and
// denominator.
func predBound(r ratfun.RatFun) float64 {
	b := r.Num.CauchyRootBound()
	if d := r.Den.CauchyRootBound(); d > b {
		b = d
	}
	return b
}

func centroid3(a, b, c geom.Point[ratfun.RatFun]) geom.Point[ratfun.RatFun] {
	three := ratfun.FromFloat(3)
	return geom.Point[ratfun.RatFun]{
		X: a.X.Add(b.X).Add(c.X).Div(three),
		Y: a.Y.Add(b.Y).Add(c.Y).Div(three),
	}
}

// verifySteadySerial is the zero-machine fallback verifier.
func verifySteadySerial(pts []geom.Point[ratfun.RatFun], cand []int, o geom.Point[ratfun.RatFun]) bool {
	h := len(cand)
	for _, p := range pts {
		inside := false
		for i := 0; i < h && !inside; i++ {
			a, b := pts[cand[i]], pts[cand[(i+1)%h]]
			if geom.Orient(a, b, p) >= 0 &&
				geom.Orient(o, a, p) >= 0 && geom.Orient(o, p, b) >= 0 {
				inside = true
			}
		}
		_ = inside
	}
	// Serial path: simply compare with the exact hull.
	exact := geom.Hull(pts)
	if len(exact) != h {
		return false
	}
	ids := map[int]bool{}
	for _, p := range exact {
		ids[p.ID] = true
	}
	for _, c := range cand {
		if !ids[pts[c].ID] {
			return false
		}
	}
	return true
}
