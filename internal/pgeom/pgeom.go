// Package pgeom implements the paper's parallel geometry on the machine
// simulator: the static algorithms of Table 4 (convex hull, closest pair,
// antipodal vertices, minimal enclosing rectangle) and their steady-state
// versions of §5, which are the same algorithms with every predicate
// evaluated in the ordered field of rational functions at t → ∞
// (Lemma 5.1, Propositions 5.2–5.4, Theorem 5.8).
//
// All algorithms are expressed in the data movement operations of §2.6 —
// sort, merge, scan, semigroup, broadcast, grouping — so their simulated
// cost is Θ(√n) on the mesh and O(log² n) on the hypercube (sort-bounded),
// the Table 3/Table 4 shape.
package pgeom

import (
	"strconv"

	"dyncg/internal/geom"
	"dyncg/internal/machine"
	"dyncg/internal/par"
	"dyncg/internal/ratfun"
)

// DirLess is a total circular order on nonzero direction vectors,
// anchored at the positive x-axis and sweeping counterclockwise — the
// generic-field replacement for comparing the angles computed in Step 2
// of Lemma 5.5's algorithm (angles themselves are not field elements, but
// their order is decidable with sign tests: quadrant class plus one cross
// product).
func DirLess[T ratfun.Real[T]](a, b geom.Point[T]) bool {
	ha, hb := dirHalf(a), dirHalf(b)
	if ha != hb {
		return ha < hb
	}
	return geom.Cross(a, b).Sign() > 0
}

// dirHalf returns 0 for directions with angle in [0, π), 1 for [π, 2π).
func dirHalf[T ratfun.Real[T]](d geom.Point[T]) int {
	sy := d.Y.Sign()
	if sy > 0 || (sy == 0 && d.X.Sign() > 0) {
		return 0
	}
	return 1
}

// DirEq reports whether two directions are positively proportional.
func DirEq[T ratfun.Real[T]](a, b geom.Point[T]) bool {
	return geom.Cross(a, b).Sign() == 0 && geom.Dot(a, b).Sign() > 0
}

// NearestNeighbor returns the index (into pts) of a nearest neighbour of
// pts[origin], excluding origin itself: broadcast the query point, Θ(1)
// local squared-distance arithmetic, then a semigroup argmin — exactly
// the algorithm of Proposition 5.2, costing Θ(√n) on the mesh and
// Θ(log n) on the hypercube. Instantiated at RatFun it is the
// steady-state nearest neighbour; at F64 the static one.
func NearestNeighbor[T ratfun.Real[T]](m *machine.M, pts []geom.Point[T], origin int, farthest bool) int {
	if m.Observed() {
		m.SpanBegin("nearest-neighbor",
			"n", strconv.Itoa(len(pts)), "origin", strconv.Itoa(origin))
		defer m.SpanEnd()
	}
	n := m.Size()
	seg := machine.WholeMachine(n)
	// Broadcast the query point.
	q := make([]machine.Reg[geom.Point[T]], n)
	q[origin] = machine.Some(pts[origin])
	machine.Spread(m, q, seg)
	// Local distance + semigroup argmin/argmax.
	type cand struct {
		d  T
		id int
	}
	regs := make([]machine.Reg[cand], n)
	m.ChargeLocal(1)
	par.ForEach(m.Workers(), len(pts), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == origin {
				continue
			}
			regs[i] = machine.Some(cand{d: geom.DistSq(pts[i], q[i].V), id: i})
		}
	})
	machine.Semigroup(m, regs, seg, func(a, b cand) cand {
		c := a.d.Cmp(b.d)
		if farthest {
			c = -c
		}
		if c < 0 || (c == 0 && a.id < b.id) {
			return a
		}
		return b
	})
	for i := range regs {
		if regs[i].Ok {
			return regs[i].V.id
		}
	}
	return -1
}
