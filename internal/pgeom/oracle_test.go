package pgeom

// Oracle differential tests: the parallel geometry algorithms against
// independent brute-force O(n²) oracles (and a gift-wrapping hull), on
// dynamic instances — systems of moving points sampled at a dense grid
// of times — across all four bundled topologies. The oracles share no
// code with the algorithms under test beyond the primitive DistSq, so a
// systematic error in the sort/envelope/antipodal machinery cannot
// cancel out of the comparison.

import (
	"fmt"
	"math/rand"
	"testing"

	"dyncg/internal/ccc"
	"dyncg/internal/dsseq"
	"dyncg/internal/geom"
	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/mesh"
	"dyncg/internal/motion"
	"dyncg/internal/ratfun"
	"dyncg/internal/shuffle"
)

// oracleTopos builds one instance of each topology with ≥ pes PEs.
func oracleTopos(pes int) map[string]machine.Topology {
	out := map[string]machine.Topology{
		"mesh":      mesh.MustNew(dsseq.NextPow4(pes), mesh.Proximity),
		"hypercube": hypercube.MustNew(dsseq.NextPow2(pes)),
	}
	q := 0
	for 1<<q < dsseq.NextPow2(pes) {
		q++
	}
	out["shuffle"] = shuffle.MustNew(q)
	for _, c := range []int{1, 2, 4, 8} {
		if c*(1<<c) >= pes {
			out["ccc"] = ccc.MustNew(c)
			break
		}
	}
	return out
}

// bruteClosestPair is the O(n²) closest-pair oracle.
func bruteClosestPair(pts []geom.Point[ratfun.F64]) (a, b int, d2 ratfun.F64) {
	a, b = -1, -1
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			d := geom.DistSq(pts[i], pts[j])
			if a < 0 || d.Cmp(d2) < 0 {
				a, b, d2 = i, j, d
			}
		}
	}
	return a, b, d2
}

// bruteDiameter is the O(n²) farthest-pair oracle.
func bruteDiameter(pts []geom.Point[ratfun.F64]) (a, b int, d2 ratfun.F64) {
	a, b = -1, -1
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			d := geom.DistSq(pts[i], pts[j])
			if a < 0 || d.Cmp(d2) > 0 {
				a, b, d2 = i, j, d
			}
		}
	}
	return a, b, d2
}

// jarvisHull is a gift-wrapping convex hull oracle: CCW vertex IDs
// starting from the lexicographically smallest point. Independent of
// both geom.Hull (monotone chain) and HullStatic (dual envelopes).
func jarvisHull(pts []geom.Point[ratfun.F64]) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	start := 0
	for i := 1; i < n; i++ {
		if pts[i].X < pts[start].X ||
			(pts[i].X == pts[start].X && pts[i].Y < pts[start].Y) {
			start = i
		}
	}
	cross := func(o, p, q int) float64 {
		return float64(pts[p].X-pts[o].X)*float64(pts[q].Y-pts[o].Y) -
			float64(pts[p].Y-pts[o].Y)*float64(pts[q].X-pts[o].X)
	}
	distSq := func(o, p int) float64 {
		dx, dy := float64(pts[p].X-pts[o].X), float64(pts[p].Y-pts[o].Y)
		return dx*dx + dy*dy
	}
	var hull []int
	cur := start
	for {
		hull = append(hull, pts[cur].ID)
		next := -1
		for cand := 0; cand < n; cand++ {
			if cand == cur {
				continue
			}
			if next < 0 {
				next = cand
				continue
			}
			c := cross(cur, next, cand)
			// Pick the most counterclockwise candidate; on ties (collinear)
			// the farther one, so collinear interior points never enter.
			if c < 0 || (c == 0 && distSq(cur, cand) > distSq(cur, next)) {
				next = cand
			}
		}
		cur = next
		if cur == start || len(hull) > n {
			break
		}
	}
	return hull
}

// requireCyclicEqual asserts got is a rotation of want (both CCW vertex
// ID cycles).
func requireCyclicEqual(t *testing.T, ctx string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: hull %v has %d vertices, oracle %v has %d",
			ctx, got, len(got), want, len(want))
	}
	if len(want) == 0 {
		return
	}
	start := -1
	for i, id := range got {
		if id == want[0] {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatalf("%s: hull %v misses oracle vertex %d", ctx, got, want[0])
	}
	for i := range want {
		if got[(start+i)%len(got)] != want[i] {
			t.Fatalf("%s: hull %v is not a rotation of oracle %v", ctx, got, want)
		}
	}
}

// TestOracleDynamicGeometry samples random k-motion systems at a dense
// time grid and checks closest pair, convex hull, and diameter against
// the brute-force oracles on every topology.
func TestOracleDynamicGeometry(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	times := []float64{0, 0.1, 0.25, 0.5, 0.75, 1, 1.5, 2, 3, 5}
	for trial := 0; trial < 3; trial++ {
		n := 8 + r.Intn(9) // 8..16 moving points
		k := 1 + r.Intn(2) // degree 1..2 motion
		sys := motion.Random(r, n, k, 2, 10)
		topos := oracleTopos(8 * n)
		for _, tm := range times {
			// Static snapshot at time tm.
			pts := make([]geom.Point[ratfun.F64], sys.N())
			for i, p := range sys.Points {
				pos := p.At(tm)
				pts[i] = geom.Point[ratfun.F64]{
					X: ratfun.F64(pos[0]), Y: ratfun.F64(pos[1]), ID: i,
				}
			}
			wantHull := jarvisHull(pts)
			_, _, wantCP := bruteClosestPair(pts)
			_, _, wantDiam := bruteDiameter(pts)

			for topoName, topo := range topos {
				ctx := func(what string) string {
					return fmt.Sprintf("%s trial %d t=%g %s", what, trial, tm, topoName)
				}
				// Closest pair: the reported distance must equal the oracle
				// minimum, and the reported pair must realise it.
				m := machine.New(topo)
				ga, gb, gd := ClosestPair(m, pts)
				if gd.Cmp(wantCP) != 0 {
					t.Fatalf("%s: distance² %v != oracle %v", ctx("closest-pair"), gd, wantCP)
				}
				if d := geom.DistSq(pts[ga], pts[gb]); d.Cmp(gd) != 0 {
					t.Fatalf("%s: pair (%d,%d) has distance² %v, reported %v",
						ctx("closest-pair"), ga, gb, d, gd)
				}

				// Hull: CCW cycle identical to gift wrapping up to rotation.
				m = machine.New(topo)
				gotHull, err := HullStatic(m, pts)
				if err != nil {
					t.Fatalf("%s: %v", ctx("hull"), err)
				}
				requireCyclicEqual(t, ctx("hull"), gotHull, wantHull)

				// Diameter: antipodal pairs over the hull must find the
				// farthest pair of the whole set.
				hullPts := make([]geom.Point[ratfun.F64], len(gotHull))
				for i, id := range gotHull {
					hullPts[i] = pts[id]
				}
				m = machine.New(topo)
				gdiam, pair := Diameter(m, hullPts)
				if gdiam.Cmp(wantDiam) != 0 {
					t.Fatalf("%s: diameter² %v != oracle %v", ctx("diameter"), gdiam, wantDiam)
				}
				da, db := hullPts[pair[0]], hullPts[pair[1]]
				if d := geom.DistSq(da, db); d.Cmp(gdiam) != 0 {
					t.Fatalf("%s: antipodal pair (%d,%d) has distance² %v, reported %v",
						ctx("diameter"), da.ID, db.ID, d, gdiam)
				}
			}
		}
	}
}
