package pgeom

import (
	"strconv"

	"dyncg/internal/geom"
	"dyncg/internal/machine"
	"dyncg/internal/ratfun"
)

// This file implements Lemma 5.5 (antipodal pairs via edge-ray sectors,
// Figure 6), Proposition 5.6 / Corollary 5.7 (diameter and farthest
// pair), and Theorem 5.8 / Corollary 5.9 (minimal-area enclosing
// rectangle) as machine algorithms. All are sort-bounded (grouping =
// sort + scan, §2.6) and generic over the ordered field, so one code path
// serves both the static rows of Table 4 and the steady-state rows of
// Table 3.

// sectorOwners implements the grouping step shared by Lemma 5.5 Step 6
// and Theorem 5.8 Step 3: the hull's edge directions divide the circle of
// directions into sectors, sector [E_{j}, E_{j+1}) belonging to vertex
// j+1 (Figure 6b); each query direction learns the vertex (or two
// vertices, when it coincides with an edge ray) whose sector contains it.
//
// hull is the CCW vertex sequence; queries are nonzero directions. The
// result maps each query index to 1–2 hull positions.
func sectorOwners[T ratfun.Real[T]](m *machine.M, hull []geom.Point[T], queries []geom.Point[T]) [][]int {
	h := len(hull)
	n := m.Size()
	type entry struct {
		dir      geom.Point[T]
		boundary bool
		owner    int // boundary: vertex whose sector starts here
		qIdx     int // query index
	}
	if h+len(queries) > n {
		panic("pgeom: machine too small for sector grouping")
	}
	entries := machine.GetScratch[machine.Reg[entry]](m, n)
	defer machine.PutScratch(m, entries)
	for j := 0; j < h; j++ {
		e := hull[(j+1)%h].Sub(hull[j]) // direction of edge j
		entries[j] = machine.Some(entry{dir: e, boundary: true, owner: (j + 1) % h, qIdx: -1})
	}
	for q, d := range queries {
		entries[h+q] = machine.Some(entry{dir: d, boundary: false, owner: -1, qIdx: q})
	}
	machine.Sort(m, entries, func(a, b entry) bool {
		if !DirEq(a.dir, b.dir) {
			return DirLess(a.dir, b.dir)
		}
		if a.boundary != b.boundary {
			return a.boundary // boundary first so equal queries see it
		}
		if a.boundary {
			return a.owner < b.owner
		}
		return a.qIdx < b.qIdx
	})
	// Forward scan: last boundary so far (owner and its direction).
	type seen struct {
		owner int
		dir   geom.Point[T]
	}
	// lastB is self-contained scratch, so it lives natively in the
	// columnar layout (no record split/join around the scan).
	lastB := machine.GetCols[seen](m, n)
	defer machine.PutCols(m, lastB)
	m.ChargeLocal(1)
	for i := range entries {
		if entries[i].Ok && entries[i].V.boundary {
			lastB.Set(i, seen{owner: entries[i].V.owner, dir: entries[i].V.dir})
		}
	}
	seg := machine.GetScratch[bool](m, n)
	if n > 0 {
		seg[0] = true
	}
	machine.ScanCols(m, lastB, seg, machine.Forward,
		func(a, b seen) seen { return b })
	machine.PutScratch(m, seg)
	// Circular wrap: queries before the first boundary belong to the
	// globally last boundary's sector (one semigroup/broadcast).
	var wrap machine.Reg[seen]
	for i := n - 1; i >= 0; i-- {
		if lastB.Occ[i] {
			wrap = machine.Some(lastB.Val[i])
			break
		}
	}
	m.ChargeLocal(1)
	out := make([][]int, len(queries))
	for i := range entries {
		if !entries[i].Ok || entries[i].V.boundary {
			continue
		}
		e := entries[i].V
		sb := wrap
		if lastB.Occ[i] {
			sb = machine.Some(lastB.Val[i])
		}
		if !sb.Ok {
			continue
		}
		owners := []int{sb.V.owner}
		// Query on the boundary ray: it also belongs to the preceding
		// sector, i.e. to vertex owner−1 (the paper's "pair of sectors if
		// −R coincides with an edge-ray").
		if DirEq(e.dir, sb.V.dir) {
			owners = append(owners, (sb.V.owner+h-1)%h)
		}
		out[e.qIdx] = owners
	}
	return out
}

// AntipodalPairs returns the antipodal vertex pairs of the CCW convex
// polygon hull, each PE ending with at most four pairs, per Lemma 5.5:
// for each edge, the vertices whose sectors contain the edge's opposite
// ray lie on the parallel disjoint support line.
func AntipodalPairs[T ratfun.Real[T]](m *machine.M, hull []geom.Point[T]) [][2]int {
	h := len(hull)
	if h < 2 {
		return nil
	}
	if h == 2 {
		return [][2]int{{0, 1}}
	}
	if m.Observed() {
		m.SpanBegin("lemma5.5-antipodal", "hull", strconv.Itoa(h))
		defer m.SpanEnd()
	}
	queries := make([]geom.Point[T], h)
	for j := 0; j < h; j++ {
		queries[j] = hull[j].Sub(hull[(j+1)%h]) // −E_j
	}
	owners := sectorOwners(m, hull, queries)
	m.ChargeLocal(1)
	seen := map[[2]int]bool{}
	var pairs [][2]int
	add := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if !seen[[2]int{a, b}] {
			seen[[2]int{a, b}] = true
			pairs = append(pairs, [2]int{a, b})
		}
	}
	for j, os := range owners {
		for _, v := range os {
			add(j, v)       // edge tail with the far vertex
			add((j+1)%h, v) // edge head with the far vertex
		}
	}
	return pairs
}

// Diameter returns the squared diameter of the hull and a realising
// antipodal pair (Proposition 5.6): antipodal pairs, a Θ(1) local max per
// PE, then a global semigroup.
func Diameter[T ratfun.Real[T]](m *machine.M, hull []geom.Point[T]) (T, [2]int) {
	if m.Observed() {
		m.SpanBegin("prop5.6-diameter", "hull", strconv.Itoa(len(hull)))
		defer m.SpanEnd()
	}
	pairs := AntipodalPairs(m, hull)
	type cand struct {
		d    T
		pair [2]int
	}
	n := m.Size()
	regs := machine.GetScratch[machine.Reg[cand]](m, n)
	defer machine.PutScratch(m, regs)
	m.ChargeLocal(1)
	for i, p := range pairs {
		// ≤ 4 pairs per PE in the Lemma 5.5 layout; the simulator stores
		// them one per PE (machines are sized ≥ 4·n so there is room),
		// which only spreads the same Θ(1) local work.
		c := cand{d: geom.DistSq(hull[p[0]], hull[p[1]]), pair: p}
		at := i % n
		if !regs[at].Ok || c.d.Cmp(regs[at].V.d) > 0 {
			regs[at] = machine.Some(c)
		}
	}
	seg := machine.GetScratch[bool](m, n)
	if n > 0 {
		seg[0] = true
	}
	machine.Semigroup(m, regs, seg, func(a, b cand) cand {
		if a.d.Cmp(b.d) >= 0 {
			return a
		}
		return b
	})
	machine.PutScratch(m, seg)
	for i := range regs {
		if regs[i].Ok {
			return regs[i].V.d, regs[i].V.pair
		}
	}
	var zero T
	return zero, [2]int{}
}

// FarthestPair solves Corollary 5.7: steady-state (or static) hull, then
// diameter; returns the two point IDs and the squared distance.
func FarthestPair[T ratfun.Real[T]](m *machine.M, pts []geom.Point[T], hullIdx []int) (int, int, T) {
	hull := make([]geom.Point[T], len(hullIdx))
	for i, j := range hullIdx {
		hull[i] = pts[j]
	}
	d2, pair := Diameter(m, hull)
	return pts[hullIdx[pair[0]]].ID, pts[hullIdx[pair[1]]].ID, d2
}

// MinAreaRect implements Theorem 5.8 on the machine: for every hull edge
// e (in parallel), the antipodal vertex gives the support line S_e, the
// sectors containing ±e⊥ give the two perpendicular support vertices, a
// Θ(1) local computation yields area(R_e), and a semigroup takes the
// minimum. Cost: Θ(√n) mesh, O(log² n) hypercube (sort-bounded grouping).
func MinAreaRect[T ratfun.Real[T]](m *machine.M, hull []geom.Point[T]) geom.Rect[T] {
	h := len(hull)
	if h < 3 {
		panic("pgeom: MinAreaRect requires a non-degenerate polygon")
	}
	if m.Observed() {
		m.SpanBegin("thm5.8-min-rect", "hull", strconv.Itoa(h))
		defer m.SpanEnd()
	}
	// Three query directions per edge: opposite ray (Step 1, via
	// Lemma 5.5), and the two perpendicular rays (Steps 2–3).
	queries := make([]geom.Point[T], 0, 3*h)
	for j := 0; j < h; j++ {
		e := hull[(j+1)%h].Sub(hull[j])
		perp := geom.Point[T]{X: e.Y.Neg(), Y: e.X}
		queries = append(queries, e.Neg(), perp, perp.Neg())
	}
	owners := sectorOwners(m, hull, queries)
	type cand struct {
		area T
		edge int
		far  int // antipodal vertex (on S_e)
		p1   int // support vertex in +e⊥
		p2   int // support vertex in −e⊥
	}
	n := m.Size()
	regs := machine.GetScratch[machine.Reg[cand]](m, n)
	defer machine.PutScratch(m, regs)
	m.ChargeLocal(1)
	for j := 0; j < h; j++ {
		far := owners[3*j]
		o1 := owners[3*j+1]
		o2 := owners[3*j+2]
		if len(far) == 0 || len(o1) == 0 || len(o2) == 0 {
			continue
		}
		p, q := hull[j], hull[(j+1)%h]
		u := q.Sub(p)
		uu := geom.Dot(u, u)
		height := geom.Cross(u, hull[far[0]].Sub(p))
		prMax := geom.Dot(hull[o1[0]].Sub(p), u)
		prMin := geom.Dot(hull[o2[0]].Sub(p), u)
		// Perpendicular support vertices maximise/minimise projection
		// along e among candidates; when the query hit a boundary both
		// sector vertices are valid — take the extremal one.
		for _, v := range o1[1:] {
			if pr := geom.Dot(hull[v].Sub(p), u); pr.Cmp(prMax) > 0 {
				prMax = pr
			}
		}
		for _, v := range o2[1:] {
			if pr := geom.Dot(hull[v].Sub(p), u); pr.Cmp(prMin) < 0 {
				prMin = pr
			}
		}
		area := prMax.Sub(prMin).Mul(height).Div(uu)
		regs[j] = machine.Some(cand{area: area, edge: j, far: far[0], p1: o1[0], p2: o2[0]})
	}
	seg := machine.GetScratch[bool](m, n)
	if n > 0 {
		seg[0] = true
	}
	machine.Semigroup(m, regs, seg, func(a, b cand) cand {
		if a.area.Cmp(b.area) <= 0 {
			return a
		}
		return b
	})
	machine.PutScratch(m, seg)
	var win cand
	found := false
	for i := range regs {
		if regs[i].Ok {
			win, found = regs[i].V, true
			break
		}
	}
	if !found {
		panic("pgeom: MinAreaRect found no candidate")
	}
	// Materialise the winning rectangle's corners (Θ(1) local work).
	p, q := hull[win.edge], hull[(win.edge+1)%h]
	u := q.Sub(p)
	uu := geom.Dot(u, u)
	nrm := geom.Point[T]{X: u.Y.Neg(), Y: u.X}
	height := geom.Cross(u, hull[win.far].Sub(p))
	prMax := geom.Dot(hull[win.p1].Sub(p), u)
	prMin := geom.Dot(hull[win.p2].Sub(p), u)
	at := func(pr, hh T) geom.Point[T] {
		return geom.Point[T]{
			X: p.X.Add(u.X.Mul(pr).Div(uu)).Add(nrm.X.Mul(hh).Div(uu)),
			Y: p.Y.Add(u.Y.Mul(pr).Div(uu)).Add(nrm.Y.Mul(hh).Div(uu)),
		}
	}
	var zero T
	return geom.Rect[T]{
		Corners: [4]geom.Point[T]{at(prMin, zero), at(prMax, zero), at(prMax, height), at(prMin, height)},
		Edge:    win.edge,
		Area:    prMax.Sub(prMin).Mul(height).Div(uu),
	}
}
