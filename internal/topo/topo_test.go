package topo

import (
	"errors"
	"testing"

	"dyncg/internal/machine"
)

func TestParse(t *testing.T) {
	for _, name := range []string{"mesh", "hypercube", "ccc", "shuffle"} {
		tp, err := Parse(name)
		if err != nil || string(tp) != name {
			t.Fatalf("Parse(%q) = %q, %v", name, tp, err)
		}
	}
	if _, err := Parse("torus"); err == nil {
		t.Fatal("Parse accepted an unknown topology")
	}
}

func TestSize(t *testing.T) {
	cases := []struct {
		tp   Topology
		n    int
		want int
	}{
		{Mesh, 1, 1},
		{Mesh, 5, 16},
		{Mesh, 16, 16},
		{Mesh, 17, 64},
		{Hypercube, 5, 8},
		{Hypercube, 8, 8},
		{Shuffle, 9, 16},
		{CCC, 1, 2},
		{CCC, 3, 8},
		{CCC, 9, 64},
		{CCC, 65, 2048},
	}
	for _, c := range cases {
		got, err := Size(c.tp, c.n)
		if err != nil || got != c.want {
			t.Fatalf("Size(%s, %d) = %d, %v; want %d", c.tp, c.n, got, err, c.want)
		}
	}
	if _, err := Size(CCC, 3000); !errors.Is(err, machine.ErrTooFewPEs) {
		t.Fatalf("Size(ccc, 3000) err = %v, want ErrTooFewPEs", err)
	}
	if _, err := Size(Topology("torus"), 4); err == nil {
		t.Fatal("Size accepted an unknown topology")
	}
}

func TestNewNetwork(t *testing.T) {
	for _, tp := range []Topology{Mesh, Hypercube, CCC, Shuffle} {
		net, err := NewNetwork(tp, 9)
		if err != nil {
			t.Fatalf("NewNetwork(%s, 9): %v", tp, err)
		}
		want, _ := Size(tp, 9)
		if net.Size() != want {
			t.Fatalf("NewNetwork(%s, 9).Size() = %d, want %d", tp, net.Size(), want)
		}
	}
	if _, err := NewNetwork(Topology("torus"), 4); err == nil {
		t.Fatal("NewNetwork accepted an unknown topology")
	}
}

func TestNewMachineOptions(t *testing.T) {
	m, err := NewMachine(Hypercube, 8, WithParallel(2), WithTracer("test"))
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	if m.Size() != 8 {
		t.Fatalf("Size() = %d, want 8", m.Size())
	}
	if m.Workers() < 2 {
		t.Fatalf("Workers() = %d, want >= 2", m.Workers())
	}

	if _, err := NewMachine(Hypercube, 8, WithFaultPlan("transient=2.0", 1)); err == nil {
		t.Fatal("NewMachine accepted a bad fault spec")
	}
	if _, err := NewMachine(Hypercube, 8, WithFaultPlan("fail=1", 1)); err == nil {
		t.Fatal("NewMachine accepted permanent failures without the recovery harness")
	}
	if _, err := NewMachine(Topology("torus"), 8); err == nil {
		t.Fatal("NewMachine accepted an unknown topology")
	}
	if _, err := NewMachine(Hypercube, 8, WithFaultPlan("transient=0.1", 1)); err != nil {
		t.Fatalf("NewMachine with transient plan: %v", err)
	}
	if _, err := NewMachine(Hypercube, 8, WithFaultPlan("", 0)); err != nil {
		t.Fatalf("NewMachine with empty fault spec: %v", err)
	}
}
