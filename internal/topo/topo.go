// Package topo is the machine-construction facade shared by the public
// dyncg package and the serving layers: topology names, family size
// rounding, network construction, and the option-configured machine
// constructor. It sits below the public facade so internal consumers
// (internal/server, internal/replaylog) can build machines without
// importing package dyncg — which in turn lets the facade import those
// layers (dyncg.Replay) without an import cycle. Package dyncg re-exports
// everything here under its original names; error strings keep the
// "dyncg:" prefix because they are part of the facade's error contract.
package topo

import (
	"fmt"

	"dyncg/internal/ccc"
	"dyncg/internal/dsseq"
	"dyncg/internal/fault"
	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/mesh"
	"dyncg/internal/shuffle"
	"dyncg/internal/trace"
)

// Topology names one of the bundled interconnection networks. The mesh
// and hypercube are the paper's machines (§2.2, §2.3); the cube-connected
// cycles and shuffle-exchange networks are the §6 extensions.
type Topology string

// The bundled topologies.
const (
	Mesh      Topology = "mesh"      // √n×√n mesh, proximity (Hilbert) order
	Hypercube Topology = "hypercube" // Gray-code-labelled hypercube
	CCC       Topology = "ccc"       // cube-connected cycles
	Shuffle   Topology = "shuffle"   // shuffle-exchange
)

// Parse converts a topology name (as used by the CLIs and the server's
// JSON schema) into a Topology.
func Parse(s string) (Topology, error) {
	switch t := Topology(s); t {
	case Mesh, Hypercube, CCC, Shuffle:
		return t, nil
	}
	return "", fmt.Errorf("dyncg: unknown topology %q (want mesh|hypercube|ccc|shuffle)", s)
}

// Size returns the exact PE count NewNetwork(topo, n) will construct:
// the smallest bundled network of the family with at least n PEs (meshes
// round up to a power of four, hypercubes and shuffle-exchange networks
// to a power of two, CCCs to q·2^q). Callers that pool machines by size
// class (internal/server) use it to compute the class key without
// constructing a network.
func Size(t Topology, n int) (int, error) {
	switch t {
	case Mesh:
		return dsseq.NextPow4(n), nil
	case Hypercube, Shuffle:
		return dsseq.NextPow2(n), nil
	case CCC:
		for _, q := range []int{1, 2, 4, 8} {
			if q*(1<<q) >= n {
				return q * (1 << q), nil
			}
		}
		return 0, fmt.Errorf("dyncg: no bundled CCC has %d PEs (largest is %d): %w",
			n, 8*(1<<8), machine.ErrTooFewPEs)
	}
	return 0, fmt.Errorf("dyncg: unknown topology %q (want mesh|hypercube|ccc|shuffle)", t)
}

// NewNetwork constructs the smallest network of the given family with at
// least n PEs (see Size for the rounding rules).
func NewNetwork(t Topology, n int) (machine.Topology, error) {
	size, err := Size(t, n)
	if err != nil {
		return nil, err
	}
	switch t {
	case Mesh:
		return mesh.New(size, mesh.Proximity)
	case Hypercube:
		return hypercube.New(size)
	case Shuffle:
		q := 0
		for 1<<q < size {
			q++
		}
		return shuffle.New(q)
	case CCC:
		for _, q := range []int{1, 2, 4, 8} {
			if q*(1<<q) == size {
				return ccc.New(q)
			}
		}
	}
	panic("unreachable") // Size already vetted topo and size
}

// config collects the Option settings applied by NewMachine.
type config struct {
	mopts      []machine.Option
	tracerName string
	hasTracer  bool
	faultSpec  string
	faultSeed  int64
	hasFault   bool
}

// Option configures a machine built by NewMachine.
type Option func(*config)

// WithParallel runs the machine's per-PE compute loops on a worker pool
// of the given size (≤ 0 means GOMAXPROCS). Simulated costs, outputs,
// and trace streams are identical to the serial backend; only host
// wall-clock time changes.
func WithParallel(workers int) Option {
	return func(c *config) {
		c.mopts = append(c.mopts, machine.WithParallel(workers))
	}
}

// WithTracer attaches a Tracer (rooted at the given span name) to the
// machine at construction.
func WithTracer(rootName string) Option {
	return func(c *config) {
		c.tracerName = rootName
		c.hasTracer = true
	}
}

// WithFaultPlan installs a seeded deterministic fault schedule parsed
// from the -faults spec syntax (e.g. "transient=0.05,retries=3").
// Transient link faults charge retry rounds while leaving answers
// bit-identical. Specs with permanent PE failures (fail=…) are rejected:
// a directly driven machine cannot survive a PE failure — permanent
// failures need the remap-and-rerun recovery harness (internal/fault.Run,
// or cmd/dyncg -faults).
func WithFaultPlan(spec string, seed int64) Option {
	return func(c *config) {
		c.faultSpec = spec
		c.faultSeed = seed
		c.hasFault = true
	}
}

// NewMachine constructs a simulated machine of the given topology family
// with at least n PEs — the single constructor behind every CLI,
// example, and the serving daemon. Options configure the parallel
// execution backend, tracing, and fault injection.
func NewMachine(t Topology, n int, opts ...Option) (*machine.M, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	net, err := NewNetwork(t, n)
	if err != nil {
		return nil, err
	}
	m := machine.New(net, cfg.mopts...)
	if cfg.hasFault {
		spec, err := fault.ParseSpec(cfg.faultSpec)
		if err != nil {
			return nil, err
		}
		if spec.Fail > 0 {
			return nil, fmt.Errorf("dyncg: fault spec %q has permanent failures (fail=%d); a directly driven machine cannot survive a PE failure — use the recovery harness (cmd/dyncg -faults)", cfg.faultSpec, spec.Fail)
		}
		if !spec.Zero() {
			p := fault.NewPlan(spec, cfg.faultSeed)
			p.Bind(m.Size())
			m.SetInjector(p)
		}
	}
	if cfg.hasTracer {
		trace.Attach(m, cfg.tracerName)
	}
	return m, nil
}
