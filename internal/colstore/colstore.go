// Package colstore provides the columnar (struct-of-arrays) register
// layout of the machine simulator. A register file used to be a slice of
// per-PE records ([]Reg[T], one {value, occupied} struct per PE); at
// production scale (n in the millions) that layout makes every round
// body a loop over fat interleaved records. A File[T] instead keeps the
// values and the occupancy mask in two parallel flat slices, so round
// bodies in internal/machine become tight loops over contiguous memory —
// bounds-check friendly, no per-element struct shuffling, and directly
// shardable by internal/par.
//
// The package is deliberately machine-free: it owns the layout and its
// pure-data helpers (conversion, masked equality, active-set
// extraction), while internal/machine owns the operations and the cost
// accounting over it.
package colstore

// File is a columnar register file: Val[i] is PE i's register value and
// Occ[i] records whether that register is occupied. The two slices are
// always the same length. Empty registers (Occ[i] == false) may hold an
// arbitrary stale value in Val[i]; all semantic comparisons must be
// masked by Occ (see Equal/EqualFunc).
type File[T any] struct {
	Val []T
	Occ []bool
}

// New returns an empty file of length n.
func New[T any](n int) File[T] {
	return File[T]{Val: make([]T, n), Occ: make([]bool, n)}
}

// Len returns the number of PEs the file spans.
func (f File[T]) Len() int { return len(f.Val) }

// Get returns PE i's value and occupancy.
func (f File[T]) Get(i int) (T, bool) { return f.Val[i], f.Occ[i] }

// Set stores v into PE i's register and marks it occupied.
func (f File[T]) Set(i int, v T) {
	f.Val[i] = v
	f.Occ[i] = true
}

// Clear empties PE i's register. The stale value is zeroed so cleared
// files compare byte-identical to fresh ones.
func (f File[T]) Clear(i int) {
	var zero T
	f.Val[i] = zero
	f.Occ[i] = false
}

// Reset empties every register.
func (f File[T]) Reset() {
	clear(f.Val)
	clear(f.Occ)
}

// CopyFrom copies src's registers into f. The files must have equal
// length.
func (f File[T]) CopyFrom(src File[T]) {
	copy(f.Val, src.Val)
	copy(f.Occ, src.Occ)
}

// Count returns the number of occupied registers.
func (f File[T]) Count() int {
	c := 0
	for _, ok := range f.Occ {
		if ok {
			c++
		}
	}
	return c
}

// Gather returns the occupied values in index order.
func (f File[T]) Gather() []T {
	var out []T
	for i, ok := range f.Occ {
		if ok {
			out = append(out, f.Val[i])
		}
	}
	return out
}

// Scatter places vals one per PE from PE 0 upward — the paper's input
// convention (no PE holds more than one item).
func Scatter[T any](n int, vals []T) File[T] {
	if len(vals) > n {
		panic("colstore: more values than PEs")
	}
	f := New[T](n)
	copy(f.Val, vals)
	for i := range vals {
		f.Occ[i] = true
	}
	return f
}

// Equal reports whether two files are semantically equal: same length,
// same occupancy mask, and equal values wherever occupied. Stale values
// of empty registers are ignored.
func Equal[T comparable](a, b File[T]) bool {
	return EqualFunc(a, b, func(x, y T) bool { return x == y })
}

// EqualFunc is Equal with a caller-supplied value comparison.
func EqualFunc[T any](a, b File[T], eq func(x, y T) bool) bool {
	if len(a.Val) != len(b.Val) {
		return false
	}
	for i, ok := range a.Occ {
		if ok != b.Occ[i] {
			return false
		}
		if ok && !eq(a.Val[i], b.Val[i]) {
			return false
		}
	}
	return true
}

// Active appends the indices of the occupied registers of occ to buf in
// ascending order and returns the extended slice. Pass buf[:0] of a
// recycled slice to keep the extraction allocation-free.
func Active(occ []bool, buf []int32) []int32 {
	for i, ok := range occ {
		if ok {
			buf = append(buf, int32(i))
		}
	}
	return buf
}
