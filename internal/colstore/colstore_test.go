package colstore

import (
	"reflect"
	"testing"
)

func TestScatterGather(t *testing.T) {
	f := Scatter(8, []int{4, 7, 9})
	if f.Len() != 8 {
		t.Fatalf("Len = %d, want 8", f.Len())
	}
	if got := f.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	if got := f.Gather(); !reflect.DeepEqual(got, []int{4, 7, 9}) {
		t.Fatalf("Gather = %v", got)
	}
	if v, ok := f.Get(1); !ok || v != 7 {
		t.Fatalf("Get(1) = %v, %v", v, ok)
	}
	if _, ok := f.Get(5); ok {
		t.Fatal("Get(5) should be empty")
	}
}

func TestScatterOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for too many values")
		}
	}()
	Scatter(2, []int{1, 2, 3})
}

func TestSetClearReset(t *testing.T) {
	f := New[string](4)
	f.Set(2, "x")
	if v, ok := f.Get(2); !ok || v != "x" {
		t.Fatalf("Get(2) = %q, %v", v, ok)
	}
	f.Clear(2)
	if v, ok := f.Get(2); ok || v != "" {
		t.Fatalf("after Clear: Get(2) = %q, %v (stale value must be zeroed)", v, ok)
	}
	f.Set(0, "a")
	f.Set(3, "b")
	f.Reset()
	if f.Count() != 0 {
		t.Fatalf("after Reset: Count = %d", f.Count())
	}
}

func TestEqualMasksStaleValues(t *testing.T) {
	a := Scatter(4, []int{1, 2})
	b := Scatter(4, []int{1, 2})
	// Different stale values under an empty register must not matter.
	a.Val[3] = 99
	if !Equal(a, b) {
		t.Fatal("files differing only in stale values must compare equal")
	}
	b.Occ[3] = true
	if Equal(a, b) {
		t.Fatal("occupancy mismatch must compare unequal")
	}
	b.Occ[3] = false
	b.Val[1] = 5
	if Equal(a, b) {
		t.Fatal("occupied value mismatch must compare unequal")
	}
	if Equal(a, New[int](5)) {
		t.Fatal("length mismatch must compare unequal")
	}
}

func TestCopyFrom(t *testing.T) {
	src := Scatter(4, []int{7, 8})
	dst := New[int](4)
	dst.CopyFrom(src)
	if !Equal(src, dst) {
		t.Fatalf("CopyFrom: %v %v != %v %v", dst.Val, dst.Occ, src.Val, src.Occ)
	}
}

func TestActive(t *testing.T) {
	f := New[int](6)
	f.Set(1, 10)
	f.Set(4, 40)
	buf := make([]int32, 0, 8)
	act := Active(f.Occ, buf[:0])
	if !reflect.DeepEqual(act, []int32{1, 4}) {
		t.Fatalf("Active = %v", act)
	}
	// Reuse without reallocating.
	f.Set(0, 0)
	act2 := Active(f.Occ, act[:0])
	if !reflect.DeepEqual(act2, []int32{0, 1, 4}) {
		t.Fatalf("Active reuse = %v", act2)
	}
	if &act2[0] != &act[0] {
		t.Fatal("Active must reuse the passed buffer")
	}
}
