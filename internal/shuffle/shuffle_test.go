package shuffle

import (
	"math/rand"
	"sort"
	"testing"

	"dyncg/internal/curve"
	"dyncg/internal/machine"
	"dyncg/internal/penvelope"
	"dyncg/internal/pieces"
	"dyncg/internal/poly"
)

func TestValidation(t *testing.T) {
	for _, q := range []int{0, 14} {
		if _, err := New(q); err == nil {
			t.Errorf("q=%d accepted", q)
		}
	}
	s := MustNew(5)
	if s.Size() != 32 {
		t.Fatalf("size = %d", s.Size())
	}
}

func TestConstantDegree(t *testing.T) {
	s := MustNew(8)
	for v := 0; v < s.Size(); v++ {
		nbs := s.Neighbors(v)
		if len(nbs) == 0 || len(nbs) > 3 {
			t.Fatalf("node %d has %d neighbours", v, len(nbs))
		}
		for _, u := range nbs {
			if u == v {
				t.Fatalf("self loop at %d", v)
			}
			if s.Distance(v, u) != 1 {
				t.Fatalf("neighbour at distance %d", s.Distance(v, u))
			}
		}
	}
}

func TestDiameterLogarithmic(t *testing.T) {
	for _, q := range []int{3, 6, 9} {
		s := MustNew(q)
		if s.Diameter() > 3*q {
			t.Fatalf("q=%d diameter %d > 3q", q, s.Diameter())
		}
	}
}

func TestMetric(t *testing.T) {
	s := MustNew(7)
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 400; trial++ {
		a, b, c := r.Intn(s.Size()), r.Intn(s.Size()), r.Intn(s.Size())
		if s.Distance(a, b) != s.Distance(b, a) {
			t.Fatal("not symmetric")
		}
		if s.Distance(a, c) > s.Distance(a, b)+s.Distance(b, c) {
			t.Fatal("triangle inequality violated")
		}
	}
}

// TestAlgorithmsRunUnchanged: sort and the Theorem 3.2 envelope work on
// the shuffle-exchange network, per the paper's §1 suggestion.
func TestAlgorithmsRunUnchanged(t *testing.T) {
	m := machine.New(MustNew(8)) // 256 PEs
	r := rand.New(rand.NewSource(6))
	vals := make([]int, 256)
	for i := range vals {
		vals[i] = r.Intn(5000)
	}
	regs := machine.Scatter(256, vals)
	machine.Sort(m, regs, func(a, b int) bool { return a < b })
	got := machine.Gather(regs)
	want := append([]int{}, vals...)
	sort.Ints(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sort mismatch at %d", i)
		}
	}

	n := 8
	cs := make([]curve.Curve, n)
	for i := range cs {
		cs[i] = curve.NewPoly(poly.New(r.NormFloat64()*4, r.NormFloat64(), 0.4))
	}
	want2 := pieces.EnvelopeOfCurves(cs, pieces.Min)
	m2 := machine.New(MustNew(8))
	got2, err := penvelope.EnvelopeOfCurves(m2, cs, pieces.Min)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(want2) {
		t.Fatalf("envelope %d pieces, want %d", len(got2), len(want2))
	}
	if m2.Stats().Time() <= 0 {
		t.Fatal("no cost charged")
	}
}
