// Package shuffle models the shuffle-exchange network, the second
// "other architecture" named by the paper's introduction alongside the
// cube-connected cycles.
//
// The network has n = 2^q nodes; node v links to v ⊕ 1 (the *exchange*
// edge) and to rol(v) / ror(v) (the perfect-*shuffle* edges, a one-bit
// cyclic rotation of the q-bit address). Like the CCC it has constant
// degree (≤ 3) and Θ(log n) diameter, and it implements machine.Topology
// so the entire algorithm suite runs on it unchanged, with distances
// from a precomputed BFS table.
package shuffle

import (
	"fmt"

	"dyncg/internal/costmemo"
)

// SE is a shuffle-exchange network of size 2^q.
type SE struct {
	q    int
	n    int
	dist [][]uint8

	costs *costmemo.Table // memoised round costs (shared across machines)
}

// New returns a shuffle-exchange network with n = 2^q nodes (q ≥ 1,
// n ≤ 2^13 to keep the BFS table modest).
func New(q int) (*SE, error) {
	if q < 1 || q > 13 {
		return nil, fmt.Errorf("shuffle: q=%d out of range [1, 13]", q)
	}
	s := &SE{q: q, n: 1 << q}
	s.precompute()
	s.costs = costmemo.New(s)
	return s, nil
}

// MustNew is New but panics on error.
func MustNew(q int) *SE {
	s, err := New(q)
	if err != nil {
		panic(err)
	}
	return s
}

// rol rotates the q-bit address left by one.
func (s *SE) rol(v int) int {
	return ((v << 1) | (v >> (s.q - 1))) & (s.n - 1)
}

// ror rotates the q-bit address right by one.
func (s *SE) ror(v int) int {
	return ((v >> 1) | ((v & 1) << (s.q - 1))) & (s.n - 1)
}

// Neighbors returns the exchange and (un)shuffle links of v.
func (s *SE) Neighbors(v int) []int {
	out := []int{v ^ 1}
	if r := s.rol(v); r != v && r != v^1 {
		out = append(out, r)
	}
	if r := s.ror(v); r != v && r != v^1 && r != s.rol(v) {
		out = append(out, r)
	}
	return out
}

func (s *SE) precompute() {
	s.dist = make([][]uint8, s.n)
	for src := 0; src < s.n; src++ {
		d := make([]uint8, s.n)
		for i := range d {
			d[i] = 0xFF
		}
		d[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range s.Neighbors(v) {
				if d[u] == 0xFF {
					d[u] = d[v] + 1
					queue = append(queue, u)
				}
			}
		}
		s.dist[src] = d
	}
}

// Size returns 2^q.
func (s *SE) Size() int { return s.n }

// Name implements machine.Topology.
func (s *SE) Name() string { return fmt.Sprintf("shuffle-exchange[2^%d]", s.q) }

// Distance implements machine.Topology.
func (s *SE) Distance(i, j int) int { return int(s.dist[i][j]) }

// XorRoundCost returns the memoised worst partner distance (in BFS hops)
// of a bit-b XOR round, computed once per SE and shared by every machine
// wrapping it.
func (s *SE) XorRoundCost(b int) int { return s.costs.XorRoundCost(b) }

// ShiftRoundCost returns the memoised worst partner distance of a ±off
// shift round.
func (s *SE) ShiftRoundCost(off int) int { return s.costs.ShiftRoundCost(off) }

// Diameter implements machine.Topology: Θ(log n) (≈ 2q − 1).
func (s *SE) Diameter() int {
	max := 0
	for _, row := range s.dist {
		for _, d := range row {
			if int(d) > max {
				max = int(d)
			}
		}
	}
	return max
}
