package ccc

import (
	"math/rand"
	"sort"
	"testing"

	"dyncg/internal/curve"
	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/penvelope"
	"dyncg/internal/pieces"
	"dyncg/internal/poly"
)

func TestNewValidation(t *testing.T) {
	for _, q := range []int{0, 3, 5, 6, 7, 9} {
		if _, err := New(q); err == nil {
			t.Errorf("q=%d accepted", q)
		}
	}
	for _, q := range []int{1, 2, 4, 8} {
		c, err := New(q)
		if err != nil {
			t.Fatalf("q=%d rejected: %v", q, err)
		}
		if c.Size() != q<<q {
			t.Fatalf("q=%d size %d, want %d", q, c.Size(), q<<q)
		}
	}
}

// TestDegreeThree: every PE has at most 3 links, the CCC's defining
// property (2 for the degenerate q=1).
func TestDegreeThree(t *testing.T) {
	for _, q := range []int{2, 4, 8} {
		c := MustNew(q)
		for v := 0; v < c.Size(); v++ {
			nbs := c.Neighbors(v)
			if len(nbs) > 3 {
				t.Fatalf("q=%d: PE %d has %d neighbours", q, v, len(nbs))
			}
			for _, u := range nbs {
				if c.Distance(v, u) != 1 {
					t.Fatalf("q=%d: neighbour %d of %d at distance %d",
						q, u, v, c.Distance(v, u))
				}
			}
		}
	}
}

// TestDistanceMetric: symmetry and triangle inequality on samples.
func TestDistanceMetric(t *testing.T) {
	c := MustNew(4)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		a, b, d := r.Intn(c.Size()), r.Intn(c.Size()), r.Intn(c.Size())
		if c.Distance(a, b) != c.Distance(b, a) {
			t.Fatal("distance not symmetric")
		}
		if c.Distance(a, d) > c.Distance(a, b)+c.Distance(b, d) {
			t.Fatal("triangle inequality violated")
		}
	}
	if c.Distance(5, 5) != 0 {
		t.Fatal("self distance nonzero")
	}
}

// TestDiameterLogarithmic: the CCC diameter is Θ(q), far below the mesh's
// Θ(√n).
func TestDiameterLogarithmic(t *testing.T) {
	for _, q := range []int{2, 4, 8} {
		c := MustNew(q)
		// Known bound: diameter ≤ ⌊5q/2⌋ − 2 for q ≥ 4 (Preparata–
		// Vuillemin); assert the loose form 3q.
		if c.Diameter() > 3*q {
			t.Fatalf("q=%d diameter %d > 3q", q, c.Diameter())
		}
	}
}

// TestMachineOpsOnCCC: the full data-movement repertoire runs unchanged
// (correctness is topology-independent; only the charged cost differs).
func TestMachineOpsOnCCC(t *testing.T) {
	c := MustNew(4) // 64 PEs
	m := machine.New(c)
	r := rand.New(rand.NewSource(7))
	vals := make([]int, 64)
	for i := range vals {
		vals[i] = r.Intn(1000)
	}
	regs := machine.Scatter(64, vals)
	machine.Sort(m, regs, func(a, b int) bool { return a < b })
	got := machine.Gather(regs)
	want := append([]int{}, vals...)
	sort.Ints(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CCC sort mismatch at %d", i)
		}
	}
	if m.Stats().Time() <= 0 {
		t.Fatal("no cost charged")
	}
}

// TestEnvelopeOnCCC: Theorem 3.2 runs on the paper's suggested "other
// architecture" and produces the exact envelope; its cost lies between
// the hypercube's (CCC emulates the cube with constant slowdown) and the
// mesh's.
func TestEnvelopeOnCCC(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	n := 16
	cs := make([]curve.Curve, n)
	for i := range cs {
		cs[i] = curve.NewPoly(poly.New(r.NormFloat64()*4, r.NormFloat64(), 0.3+r.Float64()))
	}
	want := pieces.EnvelopeOfCurves(cs, pieces.Min)

	mc := machine.New(MustNew(8)) // 2048 PEs ≥ CubePEs(16, 2)
	got, err := penvelope.EnvelopeOfCurves(mc, cs, pieces.Min)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("CCC envelope %d pieces, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("piece %d: ID %d vs %d", i, got[i].ID, want[i].ID)
		}
	}
	// Exploratory cost comparison: the CCC (degree 3) must pay more than
	// the same-size hypercube (degree log n) but stay polylogarithmic in
	// spirit — assert it is within a O(q) factor of the cube.
	mh := machine.New(hypercube.MustNew(2048))
	if _, err := penvelope.EnvelopeOfCurves(mh, cs, pieces.Min); err != nil {
		t.Fatal(err)
	}
	ccc, cube := mc.Stats().Time(), mh.Stats().Time()
	if ccc < cube {
		t.Fatalf("CCC (%d) cheaper than hypercube (%d)?", ccc, cube)
	}
	if ccc > 16*cube {
		t.Fatalf("CCC (%d) more than q× costlier than hypercube (%d)", ccc, cube)
	}
}
