// Package ccc models the cube-connected cycles network, the architecture
// the paper's introduction singles out as a further target: "It is
// possible that these algorithms can be implemented on other
// architectures, such as the cube-connected cycles or shuffle-exchange
// network, to give efficient algorithms for these architectures."
//
// A CCC(q) replaces every node of a q-dimensional hypercube with a cycle
// of q processors; processor (w, i) — cycle w ∈ {0,1}^q, position
// i ∈ [0, q) — links to its cycle neighbours (w, i±1 mod q) and across
// the cube dimension i to (w ⊕ 2^i, i). Degree is 3 regardless of size,
// the property that made CCC attractive for VLSI.
//
// The package implements the machine.Topology interface, so every
// algorithm in this repository runs on it unchanged; shortest-path
// distances are precomputed by BFS (the machine charges rounds by
// worst-case partner distance exactly as for the mesh and hypercube).
// Sizes are q·2^q, a power of two when q is: q ∈ {1, 2, 4, 8} give
// 2, 8, 64, 2048 PEs.
package ccc

import (
	"fmt"

	"dyncg/internal/costmemo"
)

// CCC is a cube-connected cycles network of size q·2^q.
type CCC struct {
	q    int
	n    int
	dist [][]uint8 // BFS shortest-path table (diameter < 256 always)

	costs *costmemo.Table // memoised round costs (shared across machines)
}

// New returns a CCC(q) for q in {1, 2, 4, 8} (so the size q·2^q is a
// power of two, as the machine's block primitives require).
func New(q int) (*CCC, error) {
	switch q {
	case 1, 2, 4, 8:
	default:
		return nil, fmt.Errorf("ccc: q=%d not supported (need q ∈ {1,2,4,8} for power-of-two size)", q)
	}
	n := q << q
	c := &CCC{q: q, n: n}
	c.precompute()
	c.costs = costmemo.New(c)
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(q int) *CCC {
	c, err := New(q)
	if err != nil {
		panic(err)
	}
	return c
}

// id maps (cycle, position) to the linear PE index.
func (c *CCC) id(w, i int) int { return w*c.q + i }

// Neighbors returns the three (two for q = 1) linked PEs of index v.
func (c *CCC) Neighbors(v int) []int {
	w, i := v/c.q, v%c.q
	out := []int{
		c.id(w, (i+1)%c.q),
		c.id(w^(1<<i), i),
	}
	if c.q > 2 {
		out = append(out, c.id(w, (i+c.q-1)%c.q))
	} else if c.q == 2 {
		// (i+1)%2 == (i−1)%2: the cycle of length two has one cycle edge.
	}
	return out
}

// precompute fills the all-pairs distance table by BFS from every node
// (one-time O(n²) setup; the machine caches per-pattern costs on top).
func (c *CCC) precompute() {
	c.dist = make([][]uint8, c.n)
	for s := 0; s < c.n; s++ {
		d := make([]uint8, c.n)
		for i := range d {
			d[i] = 0xFF
		}
		d[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range c.Neighbors(v) {
				if d[u] == 0xFF {
					d[u] = d[v] + 1
					queue = append(queue, u)
				}
			}
		}
		c.dist[s] = d
	}
}

// Size returns q·2^q.
func (c *CCC) Size() int { return c.n }

// Q returns the cycle length / cube dimension.
func (c *CCC) Q() int { return c.q }

// Name implements machine.Topology.
func (c *CCC) Name() string { return fmt.Sprintf("ccc[q=%d,n=%d]", c.q, c.n) }

// Distance implements machine.Topology: BFS shortest-path hops.
func (c *CCC) Distance(i, j int) int { return int(c.dist[i][j]) }

// XorRoundCost returns the memoised worst partner distance (in BFS hops)
// of a bit-b XOR round, computed once per CCC and shared by every machine
// wrapping it.
func (c *CCC) XorRoundCost(b int) int { return c.costs.XorRoundCost(b) }

// ShiftRoundCost returns the memoised worst partner distance of a ±off
// shift round.
func (c *CCC) ShiftRoundCost(off int) int { return c.costs.ShiftRoundCost(off) }

// Diameter implements machine.Topology: the CCC diameter is
// Θ(q) = Θ(log n) — max over the precomputed table.
func (c *CCC) Diameter() int {
	max := 0
	for _, row := range c.dist {
		for _, d := range row {
			if int(d) > max {
				max = int(d)
			}
		}
	}
	return max
}
