// Chaos battery for the fault-injection and recovery layer: every
// Table 1–3 algorithm must return bit-identical answers under any
// survivable fault schedule, with the extra simulated cost honestly
// charged — retry rounds inside the retrying primitive's span, the
// checkpoint-restore route in a "fault.recover" span, and strictly
// larger cumulative Stats than a clean run of the same work on the
// machine the computation ended up on.
//
// The CI chaos-smoke job runs `go test -race -run 'TestChaos' .`, so
// every test in this file shares the TestChaos name prefix.
package dyncg_test

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dyncg/internal/ccc"
	"dyncg/internal/core"
	"dyncg/internal/dsseq"
	"dyncg/internal/fault"
	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/mesh"
	"dyncg/internal/motion"
	"dyncg/internal/shuffle"
	"dyncg/internal/trace"
)

// chaosTopoCache shares topology instances (immutable, including their
// memoised cost tables) across the battery; ccc q=8 in particular takes
// ~0.2s of BFS to build.
var chaosTopoCache = map[string]machine.Topology{}

func chaosTopo(key string, mk func() machine.Topology) machine.Topology {
	if t, ok := chaosTopoCache[key]; ok {
		return t
	}
	t := mk()
	chaosTopoCache[key] = t
	return t
}

// chaosTopos returns one instance of each of the four topologies with at
// least pes PEs (the smallest supported size: meshes are powers of four,
// CCCs come in sizes q·2^q for q ∈ {1,2,4,8}).
func chaosTopos(pes int) map[string]machine.Topology {
	out := map[string]machine.Topology{
		"mesh": chaosTopo(fmt.Sprintf("mesh%d", dsseq.NextPow4(pes)), func() machine.Topology {
			return mesh.MustNew(dsseq.NextPow4(pes), mesh.Proximity)
		}),
		"hypercube": chaosTopo(fmt.Sprintf("cube%d", dsseq.NextPow2(pes)), func() machine.Topology {
			return hypercube.MustNew(dsseq.NextPow2(pes))
		}),
	}
	q := 0
	for 1<<q < dsseq.NextPow2(pes) {
		q++
	}
	out["shuffle"] = chaosTopo(fmt.Sprintf("shuffle%d", q), func() machine.Topology {
		return shuffle.MustNew(q)
	})
	cq := 1
	for _, c := range []int{1, 2, 4, 8} {
		cq = c
		if c*(1<<c) >= pes {
			break
		}
	}
	out["ccc"] = chaosTopo(fmt.Sprintf("ccc%d", cq), func() machine.Topology {
		return ccc.MustNew(cq)
	})
	return out
}

// chaosSystem builds a deterministic random motion system from its own
// seed, so every call with the same arguments yields the same instance.
func chaosSystem(seed int64, n, k, d int) *motion.System {
	return motion.Random(rand.New(rand.NewSource(seed)), n, k, d, 8)
}

// chaosCase is one Table 1–3 algorithm packaged as a fault.Run body. mk
// returns a fresh body plus an accessor for its captured output; the
// body is the re-run unit of the recovery protocol, so it sizes its work
// by the (fixed) problem instance, never by m.Size(), and returns an
// error when the machine is too small instead of panicking.
type chaosCase struct {
	name string
	pes  int // PEs the fault-free run needs (chaosTopos floor)
	mk   func() (body func(m *machine.M) error, out func() any)
}

var chaosCases = []chaosCase{
	{name: "table1-primitives", pes: 64, mk: func() (func(*machine.M) error, func() any) {
		var outs [][]int
		body := func(m *machine.M) error {
			const items = 16
			if m.Size() < items {
				return fmt.Errorf("table1 body: %d items need %d PEs, machine has %d",
					items, items, m.Size())
			}
			outs = outs[:0]
			r := rand.New(rand.NewSource(99))
			vals := make([]int, items)
			for i := range vals {
				vals[i] = r.Intn(1 << 16)
			}
			// Sort.
			regs := machine.Scatter(items, vals)
			machine.Sort(m, regs, func(a, b int) bool { return a < b })
			outs = append(outs, machine.Gather(regs))
			// Segmented scans, forward and backward.
			regs = machine.Scatter(items, vals)
			seg := machine.BlockSegments(items, 4)
			machine.Scan(m, regs, seg, machine.Forward, func(a, b int) int { return a + b })
			outs = append(outs, machine.Gather(regs))
			machine.Scan(m, regs, seg, machine.Backward, func(a, b int) int { return a + b })
			outs = append(outs, machine.Gather(regs))
			// Semigroup (min) and broadcast.
			regs = machine.Scatter(items, vals)
			machine.Semigroup(m, regs, seg, func(a, b int) int {
				if a < b {
					return a
				}
				return b
			})
			outs = append(outs, machine.Gather(regs))
			bregs := make([]machine.Reg[int], items)
			bregs[items/3] = machine.Some(vals[0])
			machine.Spread(m, bregs, machine.WholeMachine(items))
			outs = append(outs, machine.Gather(bregs))
			// Compaction of a sparse file.
			sparse := make([]machine.Reg[int], items)
			for i := 0; i < items; i += 3 {
				sparse[i] = machine.Some(vals[i])
			}
			machine.Compact(m, sparse, seg)
			outs = append(outs, machine.Gather(sparse))
			return nil
		}
		return body, func() any { return outs }
	}},
	{name: "thm4.1-closest-seq", pes: 64, mk: func() (func(*machine.M) error, func() any) {
		sys := chaosSystem(11, 8, 1, 2)
		var seq []core.NeighborEvent
		body := func(m *machine.M) error {
			var err error
			seq, err = core.ClosestPointSequence(m, sys, 0)
			return err
		}
		return body, func() any { return seq }
	}},
	{name: "thm4.2-collisions", pes: 64, mk: func() (func(*machine.M) error, func() any) {
		sys := motion.Converging(rand.New(rand.NewSource(12)), 8)
		var cols []core.Collision
		body := func(m *machine.M) error {
			var err error
			cols, err = core.CollisionTimes(m, sys, 0)
			return err
		}
		return body, func() any { return cols }
	}},
	{name: "thm4.3-hull-member", pes: 256, mk: func() (func(*machine.M) error, func() any) {
		sys := chaosSystem(13, 4, 1, 2)
		var ivs []core.Interval
		body := func(m *machine.M) error {
			var err error
			ivs, err = core.HullVertexIntervals(m, sys, 0)
			return err
		}
		return body, func() any { return ivs }
	}},
	{name: "thm4.4-containment", pes: 128, mk: func() (func(*machine.M) error, func() any) {
		sys := chaosSystem(14, 4, 1, 3)
		var ivs []core.Interval
		body := func(m *machine.M) error {
			var err error
			ivs, err = core.ContainmentIntervals(m, sys, []float64{12, 12, 12})
			return err
		}
		return body, func() any { return ivs }
	}},
	{name: "thm4.5-smallest-cube", pes: 128, mk: func() (func(*machine.M) error, func() any) {
		sys := chaosSystem(15, 4, 1, 3)
		var out [2]float64
		body := func(m *machine.M) error {
			d, tm, err := core.SmallestEverHypercube(m, sys)
			out = [2]float64{d, tm}
			return err
		}
		return body, func() any { return out }
	}},
	{name: "prop5.2-steady-nn", pes: 64, mk: func() (func(*machine.M) error, func() any) {
		sys := chaosSystem(16, 16, 1, 2)
		out := -1
		body := func(m *machine.M) error {
			if m.Size() < sys.N() {
				return fmt.Errorf("steady-nn: %d points on %d PEs", sys.N(), m.Size())
			}
			var err error
			out, err = core.SteadyNearestNeighbor(m, sys, 0, false)
			return err
		}
		return body, func() any { return out }
	}},
	{name: "prop5.3-steady-cp", pes: 64, mk: func() (func(*machine.M) error, func() any) {
		sys := chaosSystem(17, 16, 1, 2)
		var out [2]int
		body := func(m *machine.M) error {
			if m.Size() < sys.N() {
				return fmt.Errorf("steady-cp: %d points on %d PEs", sys.N(), m.Size())
			}
			a, b, err := core.SteadyClosestPair(m, sys)
			out = [2]int{a, b}
			return err
		}
		return body, func() any { return out }
	}},
	{name: "prop5.4-steady-hull", pes: 64, mk: func() (func(*machine.M) error, func() any) {
		sys := chaosSystem(18, 8, 1, 2)
		var hull []int
		body := func(m *machine.M) error {
			if m.Size() < sys.N() {
				return fmt.Errorf("steady-hull: %d points on %d PEs", sys.N(), m.Size())
			}
			var err error
			hull, err = core.SteadyHull(m, sys)
			return err
		}
		return body, func() any { return hull }
	}},
	{name: "cor5.7-steady-farthest", pes: 64, mk: func() (func(*machine.M) error, func() any) {
		sys := chaosSystem(19, 8, 1, 2)
		var out struct {
			A, B int
			D2   string
		}
		body := func(m *machine.M) error {
			// The antipodal-pairs stage groups hull edges with query
			// directions on one machine (sectorOwners), so demand headroom
			// beyond the point count.
			if m.Size() < 4*sys.N() {
				return fmt.Errorf("steady-farthest: %d points need %d PEs, machine has %d",
					sys.N(), 4*sys.N(), m.Size())
			}
			a, b, d2, err := core.SteadyFarthestPair(m, sys)
			out.A, out.B = a, b
			out.D2 = fmt.Sprint(d2)
			return err
		}
		return body, func() any { return out }
	}},
	{name: "cor5.9-steady-rect", pes: 64, mk: func() (func(*machine.M) error, func() any) {
		sys := chaosSystem(20, 8, 1, 2)
		var rect core.SteadyRect
		body := func(m *machine.M) error {
			// Theorem 5.8's sector grouping needs hull edges plus query
			// directions on one machine; demand headroom beyond the points.
			if m.Size() < 4*sys.N() {
				return fmt.Errorf("steady-rect: %d points need %d PEs, machine has %d",
					sys.N(), 4*sys.N(), m.Size())
			}
			var err error
			rect, err = core.SteadyMinAreaRect(m, sys)
			return err
		}
		return body, func() any { return rect }
	}},
}

// chaosSpecs is the fault workload sweep of the battery: transient-only,
// permanent-failure-only, and mixed.
var chaosSpecs = []fault.Spec{
	{Transient: 0.05, MaxRetries: 3},
	{Fail: 1, Gap: 40},
	{Transient: 0.02, Fail: 2, Gap: 60},
}

// TestChaosBattery is the main oracle: for every Table 1–3 algorithm ×
// topology × fault spec × seed, outputs are bit-identical to the
// fault-free run and the cumulative cost obeys the accounting contract.
func TestChaosBattery(t *testing.T) {
	seeds := []int64{1, 2}
	var sawTransient, sawRecovery, sawUnsurvivable bool
	for _, cs := range chaosCases {
		cs := cs
		t.Run(cs.name, func(t *testing.T) {
			for topoName, topo := range chaosTopos(cs.pes) {
				body, out := cs.mk()
				clean, err := fault.Run(topo, nil, body)
				if err != nil {
					t.Fatalf("%s: clean run: %v", topoName, err)
				}
				want := deepCopyAny(out())

				for _, spec := range chaosSpecs {
					for _, seed := range seeds {
						fbody, fout := cs.mk()
						plan := fault.NewPlan(spec, seed)
						res, err := fault.Run(topo, plan, fbody)
						ctx := fmt.Sprintf("%s spec=%q seed=%d", topoName, spec, seed)
						if err != nil {
							if errors.Is(err, fault.ErrNotSurvivable) {
								sawUnsurvivable = true
								continue // schedule killed too much of the machine
							}
							t.Fatalf("%s: %v", ctx, err)
						}
						if got := fout(); !reflect.DeepEqual(want, got) {
							t.Fatalf("%s: answer diverged under faults:\n got %v\nwant %v", ctx, got, want)
						}
						switch {
						case res.Transients == 0 && len(res.Failed) == 0:
							// The schedule happened to inject nothing: the run
							// must be indistinguishable from the clean one.
							if res.Stats != clean.Stats {
								t.Fatalf("%s: no faults fired but stats %+v != clean %+v",
									ctx, res.Stats, clean.Stats)
							}
						case len(res.Failed) == 0:
							sawTransient = true
							if res.Stats.Time() <= clean.Stats.Time() {
								t.Fatalf("%s: faulted time %d not strictly larger than clean %d",
									ctx, res.Stats.Time(), clean.Stats.Time())
							}
							if res.Stats.Rounds != clean.Stats.Rounds+res.RetryRounds {
								t.Fatalf("%s: rounds %d != clean %d + retry rounds %d",
									ctx, res.Stats.Rounds, clean.Stats.Rounds, res.RetryRounds)
							}
						default:
							sawRecovery = true
							if res.Attempts < 2 {
								t.Fatalf("%s: %d PEs failed but only %d attempt(s)",
									ctx, len(res.Failed), res.Attempts)
							}
							// The re-run landed on a degraded submachine; the
							// algorithm's answer must be machine-size invariant
							// and the cumulative cost strictly above a clean run
							// of the same body there (abort + restore are extra).
							sub := machine.New(res.Topo)
							sbody, sout := cs.mk()
							if err := sbody(sub); err != nil {
								t.Fatalf("%s: clean re-run on %s: %v", ctx, res.Topo.Name(), err)
							}
							if got := sout(); !reflect.DeepEqual(want, got) {
								t.Fatalf("%s: answer varies with machine size on %s:\n got %v\nwant %v",
									ctx, res.Topo.Name(), got, want)
							}
							if res.Stats.Time() <= sub.Stats().Time() {
								t.Fatalf("%s: degraded time %d not strictly larger than clean time %d on %s",
									ctx, res.Stats.Time(), sub.Stats().Time(), res.Topo.Name())
							}
						}
					}
				}
			}
		})
	}
	if !sawTransient {
		t.Error("battery never exercised a transient fault; densify chaosSpecs")
	}
	if !sawRecovery {
		t.Error("battery never exercised a permanent-failure recovery; densify chaosSpecs")
	}
	t.Logf("battery: transient=%v recovery=%v unsurvivable-skips=%v",
		sawTransient, sawRecovery, sawUnsurvivable)
}

// deepCopyAny snapshots a body output so later runs of sibling closures
// cannot alias it (outputs are plain data: slices, arrays, structs).
func deepCopyAny(v any) any {
	switch x := v.(type) {
	case [][]int:
		cp := make([][]int, len(x))
		for i, s := range x {
			cp[i] = append([]int(nil), s...)
		}
		return cp
	case []int:
		return append([]int(nil), x...)
	case []core.NeighborEvent:
		return append([]core.NeighborEvent(nil), x...)
	case []core.Collision:
		return append([]core.Collision(nil), x...)
	case []core.Interval:
		return append([]core.Interval(nil), x...)
	default:
		return v // value types ([2]float64, structs, int) copy by assignment
	}
}

// TestChaosDeterminism: the same fault seed against the same computation
// yields the identical fault schedule, Result, Stats, and trace span
// tree — on every topology. (The fault-layer mirror of the worker-pool
// differential tests.)
func TestChaosDeterminism(t *testing.T) {
	spec := fault.Spec{Transient: 0.03, MaxRetries: 3, Fail: 1, Gap: 50}
	var cs chaosCase
	for _, c := range chaosCases {
		if c.name == "thm4.1-closest-seq" {
			cs = c
		}
	}
	for topoName, topo := range chaosTopos(cs.pes) {
		run := func() (*fault.Result, any, []*trace.Span, error) {
			var tracers []*trace.Tracer
			body, out := cs.mk()
			res, err := fault.Run(topo, fault.NewPlan(spec, 7), body,
				fault.WithAttach(func(m *machine.M, attempt int) {
					tracers = append(tracers, trace.Attach(m, "chaos", trace.WithRounds()))
				}))
			roots := make([]*trace.Span, len(tracers))
			for i, tr := range tracers {
				roots[i] = tr.Finish()
			}
			return res, out(), roots, err
		}
		resA, outA, rootsA, errA := run()
		resB, outB, rootsB, errB := run()
		if fmt.Sprint(errA) != fmt.Sprint(errB) {
			t.Fatalf("%s: errors diverge: %v vs %v", topoName, errA, errB)
		}
		if !reflect.DeepEqual(outA, outB) {
			t.Fatalf("%s: outputs diverge between identical seeded runs", topoName)
		}
		if resA.Stats != resB.Stats || resA.Attempts != resB.Attempts ||
			resA.Transients != resB.Transients || resA.RetryRounds != resB.RetryRounds ||
			!reflect.DeepEqual(resA.Failed, resB.Failed) {
			t.Fatalf("%s: results diverge: %v (%+v) vs %v (%+v)",
				topoName, resA, resA.Stats, resB, resB.Stats)
		}
		if len(rootsA) != len(rootsB) {
			t.Fatalf("%s: %d attempts traced vs %d", topoName, len(rootsA), len(rootsB))
		}
		for i := range rootsA {
			requireSpansEqual(t, rootsA[i], rootsB[i], fmt.Sprintf("%s/attempt%d", topoName, i))
		}
	}
}

// TestChaosCostAttribution: retry rounds land inside the primitive spans
// that were executing when the fault fired, and recoveries appear as
// explicit "fault.recover" spans carrying the remap parameters — so the
// trace cost tree attributes every extra simulated step.
func TestChaosCostAttribution(t *testing.T) {
	var cs chaosCase
	for _, c := range chaosCases {
		if c.name == "table1-primitives" {
			cs = c
		}
	}
	topo := chaosTopos(cs.pes)["hypercube"]

	// Transient faults: every retry round is recorded, inside a primitive
	// span (never hoisted to the root).
	var tracers []*trace.Tracer
	body, _ := cs.mk()
	res, err := fault.Run(topo, fault.NewPlan(fault.Spec{Transient: 0.1}, 9), body,
		fault.WithAttach(func(m *machine.M, attempt int) {
			tracers = append(tracers, trace.Attach(m, "chaos", trace.WithRounds()))
		}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Transients == 0 {
		t.Fatal("transient plan injected nothing; pick a denser spec")
	}
	root := tracers[0].Finish()
	var retries, rootRetries int64
	root.Walk(func(s *trace.Span, depth int) {
		for _, ri := range s.Rounds {
			if ri.Kind == machine.RoundRetry {
				retries++
				if depth == 0 {
					rootRetries++
				}
			}
		}
	})
	if retries != res.RetryRounds {
		t.Fatalf("span tree records %d retry rounds, Result says %d", retries, res.RetryRounds)
	}
	if rootRetries != 0 {
		t.Fatalf("%d retry rounds charged at the root instead of inside primitive spans", rootRetries)
	}
	// The metrics exporter aggregates the same fault tally per primitive.
	var aggRetries int64
	for _, pm := range trace.Collect(root).ByName {
		aggRetries += pm.Retries
	}
	if aggRetries != res.RetryRounds {
		t.Fatalf("metrics tally %d retry rounds, Result says %d", aggRetries, res.RetryRounds)
	}

	// Permanent failure: the recovery is an explicit span on the new
	// machine's timeline, with the remap parameters as attributes and the
	// checkpoint-restore route as its single recorded round.
	for seed := int64(1); ; seed++ {
		if seed > 50 {
			t.Fatal("no seed in 1..50 produced a surviving recovery")
		}
		var tracers []*trace.Tracer
		body, _ := cs.mk()
		res, err := fault.Run(topo, fault.NewPlan(fault.Spec{Fail: 1, Gap: 40}, seed), body,
			fault.WithAttach(func(m *machine.M, attempt int) {
				tracers = append(tracers, trace.Attach(m, "chaos", trace.WithRounds()))
			}))
		roots := make([]*trace.Span, len(tracers))
		for i, tr := range tracers {
			roots[i] = tr.Finish()
		}
		if errors.Is(err, fault.ErrNotSurvivable) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Failed) == 0 {
			continue
		}
		var rec *trace.Span
		for _, root := range roots {
			root.Walk(func(s *trace.Span, depth int) {
				if s.Name == "fault.recover" {
					rec = s
				}
			})
		}
		if rec == nil {
			t.Fatalf("PE %v failed but no fault.recover span was traced", res.Failed)
		}
		for _, key := range []string{"pe", "from", "to", "size"} {
			if rec.Attr(key) == "" {
				t.Fatalf("fault.recover span lacks attribute %q: %+v", key, rec.Attrs)
			}
		}
		var recRounds int
		for _, ri := range rec.Rounds {
			if ri.Kind == machine.RoundRecovery {
				recRounds++
			}
		}
		if recRounds != 1 {
			t.Fatalf("fault.recover span records %d recovery rounds, want 1", recRounds)
		}
		var aggRecoveries int64
		for _, root := range roots {
			if pm := trace.Collect(root).ByName["fault.recover"]; pm != nil {
				aggRecoveries += pm.Recoveries
			}
		}
		if aggRecoveries != 1 {
			t.Fatalf("metrics tally %d recovery rounds under fault.recover, want 1", aggRecoveries)
		}
		break
	}
}
