#!/bin/sh
# Sharded-serving throughput smoke test (CI: throughput-smoke).
#
# Starts dyncgd with -shards 2 (response cache and coalescing at their
# defaults) and a replay log, drives it with cmd/loadgen for ~10s at a
# 50% duplicate ratio and a small session mix, and asserts that
#
#   - loadgen finished with zero transport errors and nonzero load,
#   - the front door actually absorbed duplicates: the loadgen source
#     split reports cache or coalesced responses, and /metrics agrees
#     (dyncg_rcache_hits_total + dyncg_coalesce_inflight_merged_total > 0),
#   - after a SIGTERM drain, the recorded replay log's hash chain
#     verifies cleanly (dyncgd replay -verify-only). Full re-execution
#     is the replay battery's job; under concurrent load the interleaved
#     pool state is nondeterministic, but the chain must always verify.
set -eu

cd "$(dirname "$0")/.."

addr=${DYNCGD_ADDR:-127.0.0.1:18090}
base="http://$addr"
duration=${LOADGEN_DURATION:-10s}

echo "==> go build ./cmd/dyncgd ./cmd/loadgen"
go build -o /tmp/dyncgd.tp ./cmd/dyncgd
go build -o /tmp/loadgen.tp ./cmd/loadgen

logdir=$(mktemp -d /tmp/dyncgd.tplog.XXXXXX)
/tmp/dyncgd.tp -addr "$addr" -shards 2 -log text -log-dir "$logdir" 2>/tmp/dyncgd.tp.log &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -f /tmp/dyncgd.tp /tmp/loadgen.tp; rm -rf "$logdir"' EXIT

i=0
until curl -fsS "$base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "throughput_smoke: daemon never became healthy" >&2
        cat /tmp/dyncgd.tp.log >&2
        exit 1
    fi
    sleep 0.1
done
echo "==> healthz OK (2 shards)"

echo "==> loadgen $duration at 50% duplicates"
summary=$(/tmp/loadgen.tp -addr "$base" -duration "$duration" -concurrency 8 \
    -dup 0.5 -session-mix 0.05 -seed 7 -json)
echo "$summary"

num() { # num <json> <key> — extracts a top-level or by_source integer
    printf '%s' "$1" | tr ',{}' '\n\n\n' | sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p" | head -1
}

sent=$(num "$summary" sent)
errors=$(num "$summary" errors)
cache=$(num "$summary" cache)
coalesced=$(num "$summary" coalesced)
if [ -z "$sent" ] || [ "$sent" -lt 100 ]; then
    echo "throughput_smoke: loadgen sent only '${sent:-0}' requests" >&2
    exit 1
fi
if [ "${errors:-0}" -ne 0 ]; then
    echo "throughput_smoke: loadgen reported $errors transport errors" >&2
    exit 1
fi
if [ "$((${cache:-0} + ${coalesced:-0}))" -lt 1 ]; then
    echo "throughput_smoke: no cache or coalesce hits in the loadgen source split" >&2
    exit 1
fi
echo "==> duplicates absorbed (cache=${cache:-0} coalesced=${coalesced:-0})"

metrics=$(curl -fsS "$base/metrics")
rhits=$(printf '%s\n' "$metrics" | awk '/^dyncg_rcache_hits_total/ {print $2}')
merged=$(printf '%s\n' "$metrics" | awk '/^dyncg_coalesce_inflight_merged_total/ {print $2}')
if [ "$(( ${rhits:-0} + ${merged:-0} ))" -lt 1 ]; then
    echo "throughput_smoke: /metrics shows no front-door hits (rcache=$rhits merged=$merged)" >&2
    exit 1
fi
echo "==> metrics agree (rcache_hits=$rhits coalesce_merged=$merged)"

kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "throughput_smoke: daemon exited $rc on SIGTERM" >&2
    cat /tmp/dyncgd.tp.log >&2
    exit 1
fi
echo "==> graceful drain OK"

/tmp/dyncgd.tp replay -log-dir "$logdir" -verify-only
echo "==> replay chain verified"

echo "throughput_smoke: OK"
