#!/bin/sh
# End-to-end smoke test for the serving daemon (CI: server-smoke).
#
# Builds cmd/dyncgd, starts it on a local port, and drives the full
# operational surface over real HTTP: /healthz, one algorithm per
# results table (§4 transient, §5 steady-state, §4.2 pair sequence), a
# byte-identical repeat that must be served from the response cache, a
# perturbed repeat that must be served by the warm pool, a fault-injected
# request through the recovery harness, a stateful session round-trip
# (create → update → query → delete, cross-checked against a direct
# facade session by examples/client -session), /metrics, and finally a
# SIGTERM drain that must exit cleanly within the grace period.
#
# The daemon runs with -log-dir, so the whole driven surface lands in a
# hash-chained computation log; after the drain, `dyncgd replay`
# verifies the chain and re-executes the captured trace against a fresh
# server, failing on the first response that is not byte-identical.
# Set DYNCGD_SEED_OUT=testdata/replay/smoke to refresh the committed
# seed trace that TestReplaySeedCorpus replays on every CI run.
set -eu

cd "$(dirname "$0")/.."

addr=${DYNCGD_ADDR:-127.0.0.1:18080}
base="http://$addr"

echo "==> go build ./cmd/dyncgd"
go build -o /tmp/dyncgd.smoke ./cmd/dyncgd

logdir=$(mktemp -d /tmp/dyncgd.replaylog.XXXXXX)
/tmp/dyncgd.smoke -addr "$addr" -log text -log-dir "$logdir" 2>/tmp/dyncgd.smoke.log &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -f /tmp/dyncgd.smoke; rm -rf "$logdir"' EXIT

# Wait for the listener (the daemon is up within milliseconds; CI
# runners get a generous 5s).
i=0
until curl -fsS "$base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "server_smoke: daemon never became healthy" >&2
        cat /tmp/dyncgd.smoke.log >&2
        exit 1
    fi
    sleep 0.1
done
echo "==> healthz OK"

# A three-point system: P0 fixed at the origin, P1 flying east, P2
# diving toward P0 (the quickstart system).
sys='[[[0],[0]],[[1,2],[0]],[[0],[20,-1]]]'

post() { # post <algorithm> <json-body> — prints the response body
    curl -fsS -X POST "$base/v1/$1" -H 'Content-Type: application/json' -d "$2"
}

expect() { # expect <label> <needle> <haystack>
    case "$3" in
    *"$2"*) echo "==> $1 OK" ;;
    *)
        echo "server_smoke: $1: expected $2 in response: $3" >&2
        exit 1
        ;;
    esac
}

# Table 1 (§4 transient): the closest-point sequence must report the
# P1 → P2 handoff.
r=$(post closest-point-sequence "{\"v\":1,\"system\":$sys,\"origin\":0}")
expect "closest-point-sequence" '"algorithm":"closest-point-sequence"' "$r"
expect "closest-point-sequence events" '"point":2' "$r"

# Table 2 (§5 steady state) on the mesh.
r=$(post steady-hull "{\"v\":1,\"system\":$sys,\"options\":{\"topology\":\"mesh\"}}")
expect "steady-hull (mesh)" '"topology":"mesh"' "$r"

# Table 3 (§4.2 pair sequences).
r=$(post closest-pair-sequence "{\"v\":1,\"system\":$sys}")
expect "closest-pair-sequence" '"algorithm":"closest-pair-sequence"' "$r"

# The byte-identical repeat of the first request must be served from
# the response cache (daemon default -rcache-bytes): same body, no pool
# work, and the source header says so.
hdr=$(curl -fsS -D - -o /dev/null -X POST "$base/v1/closest-point-sequence" \
    -H 'Content-Type: application/json' -d "{\"v\":1,\"system\":$sys,\"origin\":0}")
expect "response cache" 'X-Dyncg-Source: cache' "$hdr"

# A perturbed system in the same machine class misses the cache but
# must hit the warm pool.
sys2='[[[0],[0]],[[1,2],[0]],[[0],[19,-1]]]'
r=$(post closest-point-sequence "{\"v\":1,\"system\":$sys2,\"origin\":0}")
expect "pool reuse" '"hit":true' "$r"

# A fault-injected request runs through the recovery harness and
# reports its attempts.
r=$(post steady-hull "{\"v\":1,\"system\":$sys,\"options\":{\"faults\":\"transient=0.05,retries=3\",\"fault_seed\":7}}")
expect "faulted request" '"fault"' "$r"

# Stateful session round-trip: create, apply a delta batch, query with
# the bit-identity audit on, delete. The maintained answer after the
# batch must match the one-shot closest-point-sequence on the same
# final system (delta: insert P3 at (5, 1+t)).
r=$(post sessions "{\"v\":1,\"algorithm\":\"closest-point-sequence\",\"system\":$sys,\"origin\":0}")
expect "session create" '"id":"s-' "$r"
sid=$(printf '%s' "$r" | sed 's/.*"id":"\([^"]*\)".*/\1/')
r=$(post "sessions/$sid/update" '{"v":1,"deltas":[{"op":"insert","point":[[5],[1,1]]}]}')
expect "session update" '"inserted":[3]' "$r"
session_result=$(printf '%s' "$r" | sed 's/.*"result"://;s/}$//')
r=$(curl -fsS "$base/v1/sessions/$sid/query?verify=1")
expect "session verify" '"verified":true' "$r"
oneshot=$(post closest-point-sequence "{\"v\":1,\"system\":[[[0],[0]],[[1,2],[0]],[[0],[20,-1]],[[5],[1,1]]],\"origin\":0}")
expect "session vs one-shot" "$session_result" "$oneshot"
r=$(curl -fsS -X DELETE "$base/v1/sessions/$sid")
expect "session delete" "\"id\":\"$sid\"" "$r"
if curl -fsS "$base/v1/sessions/$sid/query" >/dev/null 2>&1; then
    echo "server_smoke: deleted session still answers" >&2
    exit 1
fi
echo "==> session round-trip OK"

# The full session surface again through the example client, which
# replays the scenario on a direct facade session and exits non-zero
# if the daemon's maintained answers ever diverge from it.
go run ./examples/client -session -addr "$base"
echo "==> session client cross-check OK"

# Operational metrics.
r=$(curl -fsS "$base/metrics")
expect "metrics" 'dyncgd_requests_total' "$r"
expect "metrics pool" 'dyncgd_pool_checkouts_total{result="hit"}' "$r"
expect "metrics sessions" 'dyncg_session_updates_total' "$r"
expect "metrics replaylog" 'dyncg_replaylog_records_total' "$r"
rhits=$(printf '%s\n' "$r" | awk '/^dyncg_rcache_hits_total/ {print $2}')
if [ -z "$rhits" ] || [ "$rhits" -lt 1 ]; then
    echo "server_smoke: expected at least one response-cache hit on /metrics, got '${rhits:-missing}'" >&2
    exit 1
fi
echo "==> metrics rcache OK ($rhits hits)"
idle_pes=$(printf '%s\n' "$r" | awk '/^dyncgd_pool_idle_pes/ {print $2}')
echo "==> pool idle PEs gauge: ${idle_pes:-missing}"
if [ -z "$idle_pes" ]; then
    echo "server_smoke: dyncgd_pool_idle_pes gauge missing from /metrics" >&2
    exit 1
fi

# Graceful drain: SIGTERM must flip health to 503 and exit 0.
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "server_smoke: daemon exited $rc on SIGTERM" >&2
    cat /tmp/dyncgd.smoke.log >&2
    exit 1
fi
echo "==> graceful drain OK"

# Deterministic replay: verify the hash chain and re-execute the whole
# captured trace against a fresh in-process server — every response must
# come back byte-identical.
/tmp/dyncgd.smoke replay -log-dir "$logdir"
echo "==> deterministic replay OK"

# Optionally refresh the committed seed trace (TestReplaySeedCorpus
# replays it on every CI run).
if [ -n "${DYNCGD_SEED_OUT:-}" ]; then
    rm -rf "$DYNCGD_SEED_OUT"
    mkdir -p "$DYNCGD_SEED_OUT"
    cp "$logdir"/replay-*.log "$DYNCGD_SEED_OUT"/
    echo "==> seed trace written to $DYNCGD_SEED_OUT"
fi

echo "server_smoke: OK"
