#!/bin/sh
# Continuous benchmark harness for the simulator's hot paths.
#
#   scripts/bench.sh          run the pinned suite and refresh BENCH_perf.json
#   scripts/bench.sh -check   run the pinned suite and gate it against the
#                             committed BENCH_perf.json (CI: bench-smoke)
#
# The suite is BenchmarkPerf*/ in bench_perf_test.go — every Table-1
# primitive x topology x n plus a composite grouping workload, measured
# with -benchmem in steady state on a warm machine — plus BenchmarkServer
# in internal/server: one full daemon request (decode, admission, pool,
# algorithm, encode) on a warm and a cold pool — plus
# BenchmarkSessionUpdate in the root package: one session delta batch
# (1/16/64 retargets) against the retained merge tree vs a full rebuild
# on the same machine — plus BenchmarkReplayLogAppend in
# internal/replaylog: the computation-log hook, gated at 0 allocs/op
# when recording is disabled. The iteration count is
# pinned (-benchtime 100x) so allocs/op is deterministic and comparable
# across hosts; cmd/benchgate documents the per-metric gate tolerances
# (allocs/op tight, B/op medium, ns/op catastrophic-only — shared runners
# are too noisy for a wall-clock trend gate).
set -eu

cd "$(dirname "$0")/.."

benchtime=${BENCH_TIME:-100x}
mode=${1:-refresh}

out=$(mktemp)
trap 'rm -f "$out"' EXIT

echo "==> go test -bench 'BenchmarkPerf|BenchmarkServer|BenchmarkSession|BenchmarkReplay' -benchtime $benchtime -benchmem"
go test -run '^$' -bench 'BenchmarkPerf|BenchmarkServer|BenchmarkSession|BenchmarkReplay' -benchtime "$benchtime" -benchmem . ./internal/server ./internal/replaylog | tee "$out"

case "$mode" in
-check)
    echo "==> benchgate -check BENCH_perf.json"
    go run ./cmd/benchgate -check BENCH_perf.json < "$out"
    ;;
refresh)
    echo "==> benchgate -out BENCH_perf.json"
    go run ./cmd/benchgate -out BENCH_perf.json -benchtime "$benchtime" < "$out"
    ;;
*)
    echo "usage: scripts/bench.sh [-check]" >&2
    exit 2
    ;;
esac
