#!/bin/sh
# Continuous benchmark harness for the simulator's hot paths.
#
#   scripts/bench.sh          run the pinned suite and refresh BENCH_perf.json
#   scripts/bench.sh -check   run the pinned suite and gate it against the
#                             committed BENCH_perf.json (CI: bench-smoke)
#
# The suite is BenchmarkPerf*/ in bench_perf_test.go — every Table-1
# primitive x topology x n plus a composite grouping workload, measured
# with -benchmem in steady state on a warm machine — plus BenchmarkServer
# in internal/server: one full daemon request (decode, admission, pool,
# algorithm, encode) on a warm and a cold pool — plus
# BenchmarkSessionUpdate in the root package: one session delta batch
# (1/16/64 retargets) against the retained merge tree vs a full rebuild
# on the same machine — plus BenchmarkReplayLogAppend in
# internal/replaylog: the computation-log hook, gated at 0 allocs/op
# when recording is disabled. The iteration count is
# pinned (-benchtime 100x) so allocs/op is deterministic and comparable
# across hosts; cmd/benchgate documents the per-metric gate tolerances
# (allocs/op tight, B/op medium, ns/op catastrophic-only — shared runners
# are too noisy for a wall-clock trend gate).
#
# BenchmarkPerfLargeN (the 64k/256k/1M columnar-core scale rows) runs in
# a second invocation at its own pinned count (BENCH_TIME_LARGE, default
# 20x) so the 1M rows stay inside the bench-smoke wall-clock budget;
# allocs/op is deterministic at any fixed iteration count, so the gate
# semantics are unchanged. Rows new to the committed baseline pass the
# -check gate with a note and are pinned on the next refresh, so adding
# a benchmark never breaks CI before its first pin (cmd/benchgate tests
# this explicitly).
#
# BenchmarkServerThroughput (the req/s saturation rows: shard counts x
# duplicate ratios plus the uncached baseline) runs in a third
# invocation WITHOUT -benchmem: per-op allocation under concurrent
# closed-loop load is nondeterministic, and the row's point is the
# higher-is-better req/s metric, which benchgate gates against
# collapses (new < old/6). BENCH_TIME_TP (default 500x) pins its
# iteration count.
set -eu

cd "$(dirname "$0")/.."

benchtime=${BENCH_TIME:-100x}
benchtime_large=${BENCH_TIME_LARGE:-20x}
benchtime_tp=${BENCH_TIME_TP:-500x}
mode=${1:-refresh}

out=$(mktemp)
trap 'rm -f "$out"' EXIT

echo "==> go test -bench 'BenchmarkPerf|BenchmarkServer$|BenchmarkSession|BenchmarkReplay' -benchtime $benchtime -benchmem"
go test -run '^$' -bench 'BenchmarkPerf($|EndToEnd)|BenchmarkServer$|BenchmarkSession|BenchmarkReplay' -benchtime "$benchtime" -benchmem . ./internal/server ./internal/replaylog | tee "$out"

echo "==> go test -bench BenchmarkPerfLargeN -benchtime $benchtime_large -benchmem"
go test -run '^$' -bench 'BenchmarkPerfLargeN' -benchtime "$benchtime_large" -benchmem . | tee -a "$out"

echo "==> go test -bench BenchmarkServerThroughput -benchtime $benchtime_tp (no -benchmem: concurrent allocs are nondeterministic)"
go test -run '^$' -bench 'BenchmarkServerThroughput' -benchtime "$benchtime_tp" ./internal/server | tee -a "$out"

case "$mode" in
-check)
    echo "==> benchgate -check BENCH_perf.json"
    go run ./cmd/benchgate -check BENCH_perf.json < "$out"
    ;;
refresh)
    echo "==> benchgate -out BENCH_perf.json"
    go run ./cmd/benchgate -out BENCH_perf.json -benchtime "$benchtime" < "$out"
    ;;
*)
    echo "usage: scripts/bench.sh [-check]" >&2
    exit 2
    ;;
esac
