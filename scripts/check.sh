#!/bin/sh
# Repository health check: formatting, vet, build, and the full test
# suite under the race detector. CI runs exactly this script; run it
# locally before sending a PR.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> staticcheck"
# Optional locally (skipped when the binary is absent); CI installs it
# and always runs this step.
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "staticcheck not installed; skipping"
fi

echo "==> go build"
go build ./...

echo "==> go test -race"
# 20m headroom: the root package carries the full columnar differential
# battery (n up to 65536), which race instrumentation slows well past
# the default 10m per-binary timeout on shared runners.
go test -race -timeout 20m ./...

echo "==> coverage gate"
# Total statement coverage measured at 78.3% when the columnar core and
# its scale-up differential battery landed (76.1% after the replay log,
# 72.5% when the gate was added in PR 2); the floor rides just under
# the measured total so any wholesale loss of test coverage fails fast
# while leaving headroom for refactoring noise.
floor=77.0
go test -coverprofile=coverage.out -timeout 20m ./... >/dev/null
total=$(go tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')
rm -f coverage.out
echo "total statement coverage: ${total}% (floor ${floor}%)"
if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t < f) }'; then
    echo "coverage ${total}% fell below the ${floor}% floor" >&2
    exit 1
fi

echo "OK"
