#!/bin/sh
# Multi-process fleet smoke test (CI: fleet-smoke).
#
# Starts three dyncgd worker processes and a consistent-hash front door
# (`dyncgd -fleet`), checks the redesigned wire surface end to end over
# real HTTP — member identity headers, the typed error envelope, the
# fleet-wide response cache, /v1/cluster introspection, a session
# round-trip that pins to the member salted into its ID — then drives
# the fleet with cmd/loadgen for ~10s with a 5% session mix and
# SIGKILLs one worker mid-run. The front door must absorb the kill:
#
#   - zero transport errors at the client (stateless traffic fails over
#     along the ring; session traffic homed on the dead member gets a
#     typed 503 member_down, which is an HTTP answer, not an error),
#   - /v1/cluster and /metrics report the member down,
#   - after the worker restarts, a probe brings it back into rotation,
#   - the front door's fleet-wide replay log's hash chain verifies
#     cleanly after the drain (dyncgd replay -verify-only).
set -eu

cd "$(dirname "$0")/.."

front=${DYNCGD_FLEET_ADDR:-127.0.0.1:19100}
w0=127.0.0.1:19101
w1=127.0.0.1:19102
w2=127.0.0.1:19103
base="http://$front"
duration=${LOADGEN_DURATION:-10s}

echo "==> go build ./cmd/dyncgd ./cmd/loadgen"
go build -o /tmp/dyncgd.fleet ./cmd/dyncgd
go build -o /tmp/loadgen.fleet ./cmd/loadgen

logdir=$(mktemp -d /tmp/dyncgd.fleetlog.XXXXXX)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -f /tmp/dyncgd.fleet /tmp/loadgen.fleet
    rm -rf "$logdir"
}
trap cleanup EXIT

start_worker() { # start_worker <id> <addr> — prints the PID
    /tmp/dyncgd.fleet -addr "$2" -member-id "$1" -fleet-ids m0,m1,m2 \
        -rcache-bytes 0 -log text >"/tmp/dyncgd.fleet.$1.log" 2>&1 &
    echo $!
}

wait_healthy() { # wait_healthy <name> <addr>
    i=0
    until curl -fsS "http://$2/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "fleet_smoke: $1 never became healthy" >&2
            cat "/tmp/dyncgd.fleet.$1.log" >&2 2>/dev/null || true
            exit 1
        fi
        sleep 0.1
    done
}

p0=$(start_worker m0 "$w0")
p1=$(start_worker m1 "$w1")
p2=$(start_worker m2 "$w2")
pids="$p0 $p1 $p2"
wait_healthy m0 "$w0"
wait_healthy m1 "$w1"
wait_healthy m2 "$w2"
echo "==> 3 workers healthy"

# The front door holds the fleet-wide response cache, coalescer, and
# replay log; a short probe period so mark-down and recovery are fast.
/tmp/dyncgd.fleet -addr "$front" \
    -fleet "m0=http://$w0,m1=http://$w1,m2=http://$w2" \
    -probe-interval 200ms -log text -log-dir "$logdir" \
    2>/tmp/dyncgd.fleet.frontdoor.log &
fdpid=$!
pids="$pids $fdpid"
wait_healthy frontdoor "$front"
echo "==> front door healthy"

sys='[[[0],[0]],[[1,2],[0]],[[0],[20,-1]]]'

expect() { # expect <label> <needle> <haystack>
    case "$3" in
    *"$2"*) echo "==> $1 OK" ;;
    *)
        echo "fleet_smoke: $1: expected $2 in: $3" >&2
        exit 1
        ;;
    esac
}

# One-shot through the front door: the answer carries the member that
# computed it and the API version.
hdr=$(curl -fsS -D - -X POST "$base/v1/closest-point-sequence" \
    -H 'Content-Type: application/json' -d "{\"v\":1,\"system\":$sys,\"origin\":0}")
expect "one-shot" '"algorithm":"closest-point-sequence"' "$hdr"
expect "member header" 'X-Dyncg-Member: m' "$hdr"
expect "api version header" 'X-Dyncg-Api-Version: 1' "$hdr"
expect "source header" 'X-Dyncg-Source: computed' "$hdr"

# A byte-identical repeat is served by the front door's fleet-wide
# cache without touching a worker.
hdr=$(curl -fsS -D - -o /dev/null -X POST "$base/v1/closest-point-sequence" \
    -H 'Content-Type: application/json' -d "{\"v\":1,\"system\":$sys,\"origin\":0}")
expect "fleet cache" 'X-Dyncg-Source: cache' "$hdr"
expect "cache member" 'X-Dyncg-Member: frontdoor' "$hdr"

# The typed error envelope on a malformed body.
r=$(curl -sS -X POST "$base/v1/steady-hull" -d '{"v":1,' || true)
expect "error envelope code" '"code":"bad_request"' "$r"
expect "error envelope message" '"message":"' "$r"
case "$r" in
*'"retryable":true'*)
    echo "fleet_smoke: bad_request must not be retryable: $r" >&2
    exit 1
    ;;
esac

# Ring introspection: three healthy members and a key probe.
r=$(curl -fsS "$base/v1/cluster?key=probe-me")
expect "cluster mode" '"mode":"fleet"' "$r"
expect "cluster roster" '"id":"m0"' "$r"
expect "cluster probe" '"key":"probe-me"' "$r"

# Session round-trip: the ID is salted with its home member and every
# follow-up routes there.
r=$(curl -fsS -X POST "$base/v1/sessions" -H 'Content-Type: application/json' \
    -d "{\"v\":1,\"algorithm\":\"closest-point-sequence\",\"system\":$sys,\"origin\":0}")
expect "session create" '"id":"s-m' "$r"
sid=$(printf '%s' "$r" | sed 's/.*"id":"\([^"]*\)".*/\1/')
r=$(curl -fsS -X POST "$base/v1/sessions/$sid/update" -H 'Content-Type: application/json' \
    -d '{"v":1,"deltas":[{"op":"insert","point":[[5],[1,1]]}]}')
expect "session update" '"inserted":[3]' "$r"
r=$(curl -fsS "$base/v1/sessions/$sid/query?verify=1")
expect "session verify" '"verified":true' "$r"
r=$(curl -fsS -X DELETE "$base/v1/sessions/$sid")
expect "session delete" "\"id\":\"$sid\"" "$r"
echo "==> session round-trip OK"

# Sustained load with a 5% session mix; SIGKILL one worker mid-run.
echo "==> loadgen $duration with mid-run SIGKILL of m1"
/tmp/loadgen.fleet -addr "$base" -duration "$duration" -concurrency 8 \
    -dup 0.5 -session-mix 0.05 -seed 7 -json >/tmp/loadgen.fleet.json &
lgpid=$!
sleep 4
kill -9 "$p1"
echo "==> m1 killed"
wait "$lgpid"
summary=$(cat /tmp/loadgen.fleet.json)
echo "$summary"

num() { # num <json> <key> — extracts an integer field
    printf '%s' "$1" | tr ',{}' '\n\n\n' | sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p" | head -1
}

sent=$(num "$summary" sent)
errors=$(num "$summary" errors)
ok=$(num "$summary" 200)
if [ -z "$sent" ] || [ "$sent" -lt 100 ]; then
    echo "fleet_smoke: loadgen sent only '${sent:-0}' requests" >&2
    exit 1
fi
# The kill must be invisible to stateless traffic: zero transport
# errors. Orphaned sessions answer typed 503s, which land in by_status.
if [ "${errors:-0}" -ne 0 ]; then
    echo "fleet_smoke: $errors transport errors through a single-member kill" >&2
    exit 1
fi
if [ "${ok:-0}" -lt $((sent / 2)) ]; then
    echo "fleet_smoke: only ${ok:-0}/$sent requests answered 200" >&2
    exit 1
fi
echo "==> kill absorbed (sent=$sent errors=0, 200s=$ok)"

# The front door noticed: cluster and metrics report m1 down.
r=$(curl -fsS "$base/v1/cluster")
m1row=$(printf '%s' "$r" | tr '{' '\n' | grep '"id":"m1"' || true)
case "$m1row" in
*'"healthy":false'*) echo "==> cluster marks m1 down" ;;
*)
    echo "fleet_smoke: cluster does not report m1 down: $r" >&2
    exit 1
    ;;
esac
m=$(curl -fsS "$base/metrics")
expect "metrics member_up" 'dyncg_fleet_member_up{member="m1"} 0' "$m"
expect "metrics member labels" 'member="m0"' "$m"

# Restart m1; the 200ms probe brings it back into rotation.
p1=$(start_worker m1 "$w1")
pids="$pids $p1"
wait_healthy m1 "$w1"
i=0
until curl -fsS "$base/metrics" | grep -q 'dyncg_fleet_member_up{member="m1"} 1'; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "fleet_smoke: front door never re-admitted restarted m1" >&2
        exit 1
    fi
    sleep 0.1
done
echo "==> m1 restarted and re-admitted"

# Drain the front door, then verify the fleet-wide replay chain.
kill -TERM "$fdpid"
rc=0
wait "$fdpid" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "fleet_smoke: front door exited $rc on SIGTERM" >&2
    cat /tmp/dyncgd.fleet.frontdoor.log >&2
    exit 1
fi
echo "==> front door drain OK"

/tmp/dyncgd.fleet replay -log-dir "$logdir" -verify-only
echo "==> fleet replay chain verified"

echo "fleet_smoke: OK"
