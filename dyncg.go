// Package dyncg is a Go reproduction of
//
//	L. Boxer and R. Miller, "Dynamic Computational Geometry on Meshes
//	and Hypercubes" (ICPP 1988; journal version 1989),
//
// providing parallel algorithms for geometric properties of systems of
// moving point-objects with polynomial ("k-motion") trajectories, executed
// on simulated mesh-connected and hypercube computers with faithful
// communication-cost accounting.
//
// # Model
//
// A System holds n points whose coordinates are polynomials of degree ≤ k
// in time (§2.4 of the paper). Algorithms run on a Machine — either a
// √n×√n mesh with proximity (Peano–Hilbert) PE ordering (§2.2) or a
// Gray-code-labelled hypercube (§2.3) — and the machine's Stats report the
// simulated parallel running time that the paper's Θ-bounds describe.
//
// # Transient-behaviour algorithms (paper §4, Table 2)
//
//   - ClosestPointSequence / FarthestPointSequence (Theorem 4.1)
//   - CollisionTimes (Theorem 4.2)
//   - HullVertexIntervals (Theorem 4.5)
//   - ContainmentIntervals (Theorem 4.6)
//   - SmallestHypercubeEdge / SmallestEverHypercube (Thm 4.7, Cor 4.8)
//
// # Steady-state algorithms (paper §5, Table 3)
//
//   - SteadyNearestNeighbor (Proposition 5.2)
//   - SteadyClosestPair (Proposition 5.3)
//   - SteadyHull (Proposition 5.4)
//   - SteadyFarthestPair (Proposition 5.6, Corollary 5.7)
//   - SteadyMinAreaRect (Theorem 5.8, Corollary 5.9)
//
// # Quick start
//
//	sys, _ := dyncg.NewSystem([]dyncg.Point{
//	    dyncg.NewPoint(dyncg.Polynomial(0, 1), dyncg.Polynomial(0)),   // (t, 0)
//	    dyncg.NewPoint(dyncg.Polynomial(10, -1), dyncg.Polynomial(1)), // (10−t, 1)
//	})
//	m := dyncg.NewCubeMachine(dyncg.EnvelopePEs(sys.N(), 2*sys.K))
//	seq, _ := dyncg.ClosestPointSequence(m, sys, 0)
//	fmt.Println(seq, m.Stats())
//
// See the runnable programs under examples/ and the experiment
// reproduction harness in bench_test.go and cmd/tables.
package dyncg

import (
	"io"
	"math/rand"

	"dyncg/internal/core"
	"dyncg/internal/dsseq"
	"dyncg/internal/fault"
	"dyncg/internal/machine"
	"dyncg/internal/motion"
	"dyncg/internal/penvelope"
	"dyncg/internal/pieces"
	"dyncg/internal/poly"
	"dyncg/internal/topo"
	"dyncg/internal/trace"
)

// --- typed errors --------------------------------------------------------
//
// Every validation failure in the facade and its internal packages wraps
// one of these sentinels, so callers branch with errors.Is instead of
// matching message strings (the server in internal/server maps them to
// HTTP statuses the same way).
var (
	// ErrTooFewPEs: the machine is too small for the computation (the
	// algorithms prescribe Θ(n) or Θ(λ(n, s)) PEs; see EnvelopePEs).
	ErrTooFewPEs = machine.ErrTooFewPEs
	// ErrBadSystem: the system of moving points (or a query against it)
	// violates the paper's §2.4 input model.
	ErrBadSystem = motion.ErrBadSystem
	// ErrNotSurvivable: a fault schedule killed enough PEs that no
	// healthy aligned submachine can still run the computation.
	ErrNotSurvivable = fault.ErrNotSurvivable
)

// Point is a moving point-object: one polynomial per coordinate (§2.4).
type Point = motion.Point

// System is a dynamic system of moving point-objects with k-motion.
type System = motion.System

// Machine is a simulated mesh or hypercube with cost accounting.
type Machine = machine.M

// Stats is the simulated parallel running time of a computation.
type Stats = machine.Stats

// Interval is a closed time interval; Hi may be +Inf.
type Interval = core.Interval

// NeighborEvent is one element of a closest/farthest-point sequence.
type NeighborEvent = core.NeighborEvent

// Collision is a collision event between two points.
type Collision = core.Collision

// Piecewise is an ordered piecewise function of time (a min/max function
// description, §2.5).
type Piecewise = pieces.Piecewise

// Polynomial builds the polynomial c0 + c1·t + c2·t² + … .
func Polynomial(coefs ...float64) poly.Poly { return poly.New(coefs...) }

// NewPoint builds a moving point from its coordinate polynomials.
func NewPoint(coords ...poly.Poly) Point { return motion.NewPoint(coords...) }

// NewSystem validates and wraps a set of moving points.
func NewSystem(pts []Point) (*System, error) { return motion.NewSystem(pts) }

// RandomSystem generates a random n-point system with k-motion in d
// dimensions (a benchmark workload).
func RandomSystem(r *rand.Rand, n, k, d int, scale float64) *System {
	return motion.Random(r, n, k, d, scale)
}

// Topology names one of the bundled interconnection networks. The mesh
// and hypercube are the paper's machines (§2.2, §2.3); the cube-connected
// cycles and shuffle-exchange networks are the §6 extensions.
// (= internal/topo.Topology, the construction facade shared with the
// serving layers.)
type Topology = topo.Topology

// The bundled topologies.
const (
	Mesh      = topo.Mesh      // √n×√n mesh, proximity (Hilbert) order
	Hypercube = topo.Hypercube // Gray-code-labelled hypercube
	CCC       = topo.CCC       // cube-connected cycles
	Shuffle   = topo.Shuffle   // shuffle-exchange
)

// ParseTopology converts a topology name (as used by the CLIs and the
// server's JSON schema) into a Topology.
func ParseTopology(s string) (Topology, error) { return topo.Parse(s) }

// Network is the communication structure a Machine simulates
// (= machine.Topology). Networks are immutable after construction and
// may be shared across machines and goroutines.
type Network = machine.Topology

// TopologySize returns the exact PE count NewNetwork(topo, n) will
// construct: the smallest bundled network of the family with at least n
// PEs (meshes round up to a power of four, hypercubes and
// shuffle-exchange networks to a power of two, CCCs to q·2^q). Callers
// that pool machines by size class (internal/server) use it to compute
// the class key without constructing a network.
func TopologySize(t Topology, n int) (int, error) { return topo.Size(t, n) }

// NewNetwork constructs the smallest network of the given family with at
// least n PEs (see TopologySize for the rounding rules).
func NewNetwork(t Topology, n int) (Network, error) { return topo.NewNetwork(t, n) }

// MachineOption configures a machine built by NewMachine.
type MachineOption = topo.Option

// WithParallel runs the machine's per-PE compute loops on a worker pool
// of the given size (≤ 0 means GOMAXPROCS). Simulated costs, outputs,
// and trace streams are identical to the serial backend; only host
// wall-clock time changes.
func WithParallel(workers int) MachineOption { return topo.WithParallel(workers) }

// WithTracer attaches a Tracer (rooted at the given span name) to the
// machine at construction. Retrieve it with MachineTracer and call
// Finish to obtain the span tree.
func WithTracer(rootName string) MachineOption { return topo.WithTracer(rootName) }

// WithFaultPlan installs a seeded deterministic fault schedule parsed
// from the -faults spec syntax (e.g. "transient=0.05,retries=3").
// Transient link faults charge retry rounds while leaving answers
// bit-identical. Specs with permanent PE failures (fail=…) are rejected:
// a directly driven machine cannot survive a PE failure — permanent
// failures need the remap-and-rerun recovery harness (internal/fault.Run,
// or cmd/dyncg -faults).
func WithFaultPlan(spec string, seed int64) MachineOption {
	return topo.WithFaultPlan(spec, seed)
}

// NewMachine constructs a simulated machine of the given topology family
// with at least n PEs — the single constructor behind every CLI,
// example, and the serving daemon. Options configure the parallel
// execution backend, tracing, and fault injection.
func NewMachine(t Topology, n int, opts ...MachineOption) (*Machine, error) {
	return topo.NewMachine(t, n, opts...)
}

// MachineTracer returns the Tracer attached to m by WithTracer (or
// AttachTracer), or nil if no tracer is attached.
func MachineTracer(m *Machine) *Tracer {
	if t, ok := m.Observer().(*trace.Tracer); ok {
		return t
	}
	return nil
}

// NewMeshMachine returns a proximity-ordered mesh with at least n PEs
// (rounded up to a power of four).
//
// Deprecated: use NewMachine(Mesh, n).
func NewMeshMachine(n int) *Machine {
	m, err := NewMachine(Mesh, n)
	if err != nil {
		panic(err) // unreachable for the mesh family
	}
	return m
}

// NewCubeMachine returns a Gray-code-labelled hypercube with at least n
// PEs (rounded up to a power of two).
//
// Deprecated: use NewMachine(Hypercube, n).
func NewCubeMachine(n int) *Machine {
	m, err := NewMachine(Hypercube, n)
	if err != nil {
		panic(err) // unreachable for the hypercube family
	}
	return m
}

// EnvelopePEs returns the number of PEs the envelope-based algorithms
// need for n functions with at most s pairwise intersections — the
// Θ(λ(n, s)) allocation of Theorem 3.2.
func EnvelopePEs(n, s int) int { return penvelope.CubePEs(n, s) }

// Lambda returns the Davenport–Schinzel bound λ(n, s) (§2.5).
func Lambda(n, s int) int { return dsseq.Lambda(n, s) }

// --- §4: transient behaviour -------------------------------------------

// ClosestPointSequence returns the chronological sequence of closest
// points to sys.Points[origin] (Theorem 4.1).
func ClosestPointSequence(m *Machine, sys *System, origin int) ([]NeighborEvent, error) {
	return core.ClosestPointSequence(m, sys, origin)
}

// FarthestPointSequence returns the chronological sequence of farthest
// points from sys.Points[origin] (Theorem 4.1).
func FarthestPointSequence(m *Machine, sys *System, origin int) ([]NeighborEvent, error) {
	return core.FarthestPointSequence(m, sys, origin)
}

// CollisionTimes returns the sorted times at which sys.Points[origin]
// collides with other points (Theorem 4.2).
func CollisionTimes(m *Machine, sys *System, origin int) ([]Collision, error) {
	return core.CollisionTimes(m, sys, origin)
}

// HullVertexIntervals returns the ordered time intervals during which
// sys.Points[origin] is an extreme point of the convex hull of the
// planar system (Theorem 4.5).
func HullVertexIntervals(m *Machine, sys *System, origin int) ([]Interval, error) {
	return core.HullVertexIntervals(m, sys, origin)
}

// ContainmentIntervals returns the ordered time intervals during which
// the system fits in an iso-oriented hyper-rectangle with the given side
// lengths (Theorem 4.6).
func ContainmentIntervals(m *Machine, sys *System, dims []float64) ([]Interval, error) {
	return core.ContainmentIntervals(m, sys, dims)
}

// SmallestHypercubeEdge returns the piecewise function D(t): the edge
// length of the smallest iso-oriented hypercube containing the system at
// time t (Theorem 4.7).
func SmallestHypercubeEdge(m *Machine, sys *System) (Piecewise, error) {
	return core.SmallestHypercubeEdge(m, sys)
}

// SmallestEverHypercube returns min_t D(t) and a time attaining it
// (Corollary 4.8).
func SmallestEverHypercube(m *Machine, sys *System) (dmin, tmin float64, err error) {
	return core.SmallestEverHypercube(m, sys)
}

// --- §5: steady state ----------------------------------------------------

// SteadyNearestNeighbor returns a steady-state nearest (or farthest)
// neighbour of sys.Points[origin] (Proposition 5.2).
func SteadyNearestNeighbor(m *Machine, sys *System, origin int, farthest bool) (int, error) {
	return core.SteadyNearestNeighbor(m, sys, origin, farthest)
}

// SteadyClosestPair returns a steady-state closest pair (Proposition 5.3).
func SteadyClosestPair(m *Machine, sys *System) (int, int, error) {
	return core.SteadyClosestPair(m, sys)
}

// SteadyHull returns the steady-state hull vertices in counterclockwise
// order (Proposition 5.4).
func SteadyHull(m *Machine, sys *System) ([]int, error) {
	return core.SteadyHull(m, sys)
}

// SteadyFarthestPair returns a steady-state farthest pair and the
// squared-distance polynomial realising the diameter function
// (Proposition 5.6, Corollary 5.7).
func SteadyFarthestPair(m *Machine, sys *System) (a, b int, dist2 poly.Poly, err error) {
	return core.SteadyFarthestPair(m, sys)
}

// SteadyRect describes a steady-state minimal-area enclosing rectangle.
type SteadyRect = core.SteadyRect

// SteadyMinAreaRect returns a steady-state minimal-area enclosing
// rectangle (Theorem 5.8, Corollary 5.9).
func SteadyMinAreaRect(m *Machine, sys *System) (SteadyRect, error) {
	return core.SteadyMinAreaRect(m, sys)
}

// --- §6: extensions ------------------------------------------------------

// PairEvent is one element of a closest/farthest-pair sequence (§6).
type PairEvent = core.PairEvent

// ClosestPairSequence returns the chronological sequence of closest
// pairs of the whole system — the extension sketched in §6 ("Further
// Remarks"), using Θ(λ(n(n−1)/2, 2k)) PEs (size machines with
// PairSequencePEs).
func ClosestPairSequence(m *Machine, sys *System) ([]PairEvent, error) {
	return core.ClosestPairSequence(m, sys)
}

// FarthestPairSequence is the farthest-pair (diameter-over-time)
// variant of ClosestPairSequence.
func FarthestPairSequence(m *Machine, sys *System) ([]PairEvent, error) {
	return core.FarthestPairSequence(m, sys)
}

// PairSequencePEs returns the §6 function count for the pair sequences.
func PairSequencePEs(n, k int) int { return core.PairSequencePEs(n, k) }

// SteadyNearestNeighborD is SteadyNearestNeighbor for systems in any
// fixed dimension (Proposition 5.2 as stated).
func SteadyNearestNeighborD(m *Machine, sys *System, origin int, farthest bool) (int, error) {
	return core.SteadyNearestNeighborD(m, sys, origin, farthest)
}

// --- tracing & cost attribution ------------------------------------------

// Tracer records a hierarchical span tree attributing a machine's
// simulated time to algorithm phases and data-movement primitives.
type Tracer = trace.Tracer

// TraceSpan is one node of a recorded span tree; its Delta is the
// simulated-time Stats charged while the span was open.
type TraceSpan = trace.Span

// TraceMetrics is an aggregate per-primitive cost registry built from a
// span tree.
type TraceMetrics = trace.Metrics

// AttachTracer installs a Tracer on m. Run any algorithms, then call
// Finish to obtain the span tree; while attached, every primitive
// (sort, merge, prefix, broadcast, …) and every instrumented theorem
// records a span.
func AttachTracer(m *Machine, rootName string) *Tracer { return trace.Attach(m, rootName) }

// WriteChromeTrace writes a span tree in Chrome trace-event JSON format
// (load the file in chrome://tracing or ui.perfetto.dev; timestamps are
// simulated steps rendered as microseconds).
func WriteChromeTrace(w io.Writer, root *TraceSpan, m *Machine) error {
	return trace.WriteChrome(w, root, m)
}

// WriteCostTree pretty-prints the per-span cost-attribution tree
// (maxDepth 0 means unlimited).
func WriteCostTree(w io.Writer, root *TraceSpan, maxDepth int) {
	trace.WriteCostTree(w, root, maxDepth)
}

// CollectTraceMetrics aggregates the per-primitive self-costs of a span
// tree (totals sum exactly to the root's Stats).
func CollectTraceMetrics(root *TraceSpan) *TraceMetrics { return trace.Collect(root) }
