// Scale-up differential battery for the columnar simulator core: every
// serving-surface algorithm runs on mesh and hypercube machines at
// n ∈ {16, 1024, 65536} PEs and workers ∈ {1, 8}, and the answer (in its
// wire form), the Stats counters, and the trace round stream must be
// bit-identical to golden captures recorded before the struct-of-arrays
// refactor of internal/machine. The goldens live under
// testdata/replay/columnar/ next to the replaylog corpora; regenerate
// them (only when behaviour is *supposed* to change) with
//
//	go test -run TestColumnarDifferential -update-columnar .
//
// Small-n goldens additionally pin the full span tree for debuggability;
// large-n goldens pin a canonical SHA-256 digest of the span tree and its
// round stream. Large-n cases are skipped under -short and under the
// race detector (wall-clock prohibitive; the same code paths run under
// -race at the smaller sizes).
package dyncg_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"hash"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dyncg/internal/api"
	"dyncg/internal/core"
	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/mesh"
	"dyncg/internal/motion"
	"dyncg/internal/trace"
)

var updateColumnar = flag.Bool("update-columnar", false,
	"rewrite the testdata/replay/columnar goldens with the current behaviour")

// columnarSizes are the machine sizes of the battery: a toy machine, the
// pre-refactor bench ceiling neighbourhood, and a scale-up size. All are
// simultaneously powers of four (mesh) and two (hypercube), so both
// families construct exactly n PEs.
var columnarSizes = []int{16, 1024, 65536}

var columnarWorkers = []int{1, 8}

// columnarSystem is the fixed 6-point, 1-motion planar system every case
// runs on. The battery varies the *machine*, not the input: the point of
// the refactor is that the same small computation stays bit-identical
// while the register files underneath it grow from 16 PEs to 65536.
func columnarSystem() *motion.System {
	return motion.Random(rand.New(rand.NewSource(1988)), 6, 1, 2, 10)
}

// columnarAlgos mirrors the serving surface: the 14 POST /v1/<name>
// algorithms, each paired with its wire conversion (the same rendering
// internal/server applies), so golden answers are the exact payloads a
// daemon would have served.
var columnarAlgos = []struct {
	name string
	run  func(m *machine.M, sys *motion.System) (any, error)
}{
	{"closest-point-sequence", func(m *machine.M, sys *motion.System) (any, error) {
		seq, err := core.ClosestPointSequence(m, sys, 0)
		return wireNeighborEvents(seq), err
	}},
	{"farthest-point-sequence", func(m *machine.M, sys *motion.System) (any, error) {
		seq, err := core.FarthestPointSequence(m, sys, 0)
		return wireNeighborEvents(seq), err
	}},
	{"collision-times", func(m *machine.M, sys *motion.System) (any, error) {
		cs, err := core.CollisionTimes(m, sys, 0)
		out := make([]api.Collision, 0, len(cs))
		for _, c := range cs {
			out = append(out, api.Collision{T: c.T, A: c.A, B: c.B})
		}
		return out, err
	}},
	{"hull-vertex-intervals", func(m *machine.M, sys *motion.System) (any, error) {
		ivs, err := core.HullVertexIntervals(m, sys, 0)
		return wireIntervals(ivs), err
	}},
	{"containment-intervals", func(m *machine.M, sys *motion.System) (any, error) {
		ivs, err := core.ContainmentIntervals(m, sys, []float64{10, 10})
		return wireIntervals(ivs), err
	}},
	{"smallest-hypercube-edge", func(m *machine.M, sys *motion.System) (any, error) {
		pw, err := core.SmallestHypercubeEdge(m, sys)
		out := make([]api.Piece, 0, len(pw))
		for _, p := range pw {
			out = append(out, api.Piece{F: fmt.Sprintf("%v", p.F), ID: p.ID, Lo: api.Time(p.Lo), Hi: api.Time(p.Hi)})
		}
		return out, err
	}},
	{"smallest-ever-hypercube", func(m *machine.M, sys *motion.System) (any, error) {
		dmin, tmin, err := core.SmallestEverHypercube(m, sys)
		return api.MinCube{D: dmin, T: tmin}, err
	}},
	{"steady-nearest-neighbor", func(m *machine.M, sys *motion.System) (any, error) {
		nn, err := core.SteadyNearestNeighborD(m, sys, 0, false)
		return api.Neighbor{Point: nn}, err
	}},
	{"steady-closest-pair", func(m *machine.M, sys *motion.System) (any, error) {
		a, b, err := core.SteadyClosestPair(m, sys)
		return api.Pair{A: a, B: b}, err
	}},
	{"steady-hull", func(m *machine.M, sys *motion.System) (any, error) {
		hull, err := core.SteadyHull(m, sys)
		return api.Hull{Vertices: hull}, err
	}},
	{"steady-farthest-pair", func(m *machine.M, sys *motion.System) (any, error) {
		a, b, d2, err := core.SteadyFarthestPair(m, sys)
		return api.FarthestPair{A: a, B: b, Dist2: append(make([]float64, 0, len(d2)), d2...)}, err
	}},
	{"steady-min-area-rect", func(m *machine.M, sys *motion.System) (any, error) {
		rect, err := core.SteadyMinAreaRect(m, sys)
		if err != nil {
			return nil, err
		}
		return api.Rect{Edge: rect.Edge, Area: fmt.Sprintf("%v", rect.Area)}, nil
	}},
	{"closest-pair-sequence", func(m *machine.M, sys *motion.System) (any, error) {
		seq, err := core.ClosestPairSequence(m, sys)
		return wirePairEvents(seq), err
	}},
	{"farthest-pair-sequence", func(m *machine.M, sys *motion.System) (any, error) {
		seq, err := core.FarthestPairSequence(m, sys)
		return wirePairEvents(seq), err
	}},
}

func wireNeighborEvents(seq []core.NeighborEvent) []api.NeighborEvent {
	out := make([]api.NeighborEvent, 0, len(seq))
	for _, ev := range seq {
		out = append(out, api.NeighborEvent{Point: ev.Point, Lo: api.Time(ev.Lo), Hi: api.Time(ev.Hi)})
	}
	return out
}

func wireIntervals(ivs []core.Interval) []api.Interval {
	out := make([]api.Interval, 0, len(ivs))
	for _, iv := range ivs {
		out = append(out, api.Interval{Lo: api.Time(iv.Lo), Hi: api.Time(iv.Hi)})
	}
	return out
}

func wirePairEvents(seq []core.PairEvent) []api.PairEvent {
	out := make([]api.PairEvent, 0, len(seq))
	for _, ev := range seq {
		out = append(out, api.PairEvent{A: ev.A, B: ev.B, Lo: api.Time(ev.Lo), Hi: api.Time(ev.Hi)})
	}
	return out
}

// columnarGolden is one committed capture: everything observable about
// one (algorithm, topology, n) computation.
type columnarGolden struct {
	Algo   string          `json:"algo"`
	Topo   string          `json:"topo"`
	N      int             `json:"n"`
	Err    string          `json:"err,omitempty"`
	Answer json.RawMessage `json:"answer,omitempty"`
	Stats  machine.Stats   `json:"stats"`
	// SpanDigest is the canonical SHA-256 of the span tree: names,
	// attributes, Begin/End counters, and the full per-round event stream.
	SpanDigest string `json:"span_digest"`
	// Spans pins the whole tree (rounds included) at the smallest size, so
	// a digest mismatch at n=16 is debuggable by eye.
	Spans json.RawMessage `json:"spans,omitempty"`
}

// compactJSON strips the indentation MarshalIndent adds to nested raw
// messages when a golden is written, so answers compare byte-identically
// modulo that formatting.
func compactJSON(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	if len(raw) == 0 {
		return ""
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compact: %v", err)
	}
	return buf.String()
}

func columnarGoldenPath(algo, topo string, n int) string {
	return filepath.Join("testdata", "replay", "columnar",
		fmt.Sprintf("%s_%s_n%d.json", algo, topo, n))
}

// spanDigest canonically hashes a span tree, round stream included.
func spanDigest(root *trace.Span) string {
	h := sha256.New()
	hashSpan(h, root)
	return hex.EncodeToString(h.Sum(nil))
}

func hashSpan(h hash.Hash, s *trace.Span) {
	writeString := func(str string) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(len(str)))
		h.Write(b[:])
		h.Write([]byte(str))
	}
	writeInts := func(vs ...int64) {
		var b [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			h.Write(b[:])
		}
	}
	writeString(s.Name)
	writeInts(int64(len(s.Attrs)))
	for _, a := range s.Attrs {
		writeString(a.Key)
		writeString(a.Val)
	}
	writeInts(s.Begin.CommSteps, s.Begin.LocalSteps, s.Begin.Rounds, s.Begin.Messages,
		s.End.CommSteps, s.End.LocalSteps, s.End.Rounds, s.End.Messages)
	writeInts(int64(len(s.Rounds)))
	for _, r := range s.Rounds {
		writeInts(int64(r.Kind), int64(r.Param), int64(r.Dist), int64(r.Msgs))
	}
	writeInts(int64(len(s.Children)))
	for _, c := range s.Children {
		hashSpan(h, c)
	}
}

// runColumnarCase executes one (algo, topo, n, workers) cell and returns
// its observable behaviour.
func runColumnarCase(t *testing.T, algoIdx int, topo machine.Topology, workers int) (g columnarGolden, root *trace.Span) {
	t.Helper()
	m := machine.New(topo, machine.WithParallel(workers))
	tr := trace.Attach(m, "columnar", trace.WithRounds())
	ans, err := columnarAlgos[algoIdx].run(m, columnarSystem())
	st := m.Stats()
	root = tr.Finish()
	g = columnarGolden{
		Algo:       columnarAlgos[algoIdx].name,
		Topo:       topo.Name(),
		N:          topo.Size(),
		Stats:      st,
		SpanDigest: spanDigest(root),
	}
	if err != nil {
		g.Err = err.Error()
		return g, root
	}
	raw, jerr := json.Marshal(ans)
	if jerr != nil {
		t.Fatalf("marshal answer: %v", jerr)
	}
	g.Answer = raw
	return g, root
}

// TestColumnarDifferential is the scale-up differential battery: current
// behaviour vs the committed pre-refactor captures, at every size and
// worker count, for all 14 serving-surface algorithms on both of the
// paper's machine families.
func TestColumnarDifferential(t *testing.T) {
	sys := columnarSystem()
	if sys.N() != 6 || sys.K != 1 {
		t.Fatalf("fixed system drifted: n=%d k=%d", sys.N(), sys.K)
	}
	for _, n := range columnarSizes {
		if n > 1024 && testing.Short() {
			continue
		}
		// Race instrumentation multiplies the 65536 tier past any sane
		// wall clock (>10m); the same columnar code paths run under
		// -race at 16 and 1024, and the large tier runs uninstrumented
		// in the plain suite and the large-n CI step.
		if n > 1024 && raceEnabled {
			continue
		}
		topos := map[string]machine.Topology{
			"mesh":      mesh.MustNew(n, mesh.Proximity),
			"hypercube": hypercube.MustNew(n),
		}
		for topoName, topo := range topos {
			if topo.Size() != n {
				t.Fatalf("%s: constructed %d PEs, want exactly %d", topoName, topo.Size(), n)
			}
			for ai := range columnarAlgos {
				algo := columnarAlgos[ai].name
				t.Run(fmt.Sprintf("%s/%s/n=%d", algo, topoName, n), func(t *testing.T) {
					path := columnarGoldenPath(algo, topoName, n)
					if *updateColumnar {
						g, root := runColumnarCase(t, ai, topo, 1)
						if n == columnarSizes[0] {
							spans, err := json.Marshal(root)
							if err != nil {
								t.Fatalf("marshal spans: %v", err)
							}
							g.Spans = spans
						}
						data, err := json.MarshalIndent(g, "", " ")
						if err != nil {
							t.Fatal(err)
						}
						if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
							t.Fatal(err)
						}
						if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
							t.Fatal(err)
						}
						return
					}
					data, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("missing golden (run with -update-columnar to record): %v", err)
					}
					var want columnarGolden
					if err := json.Unmarshal(data, &want); err != nil {
						t.Fatalf("%s: %v", path, err)
					}
					for _, workers := range columnarWorkers {
						got, root := runColumnarCase(t, ai, topo, workers)
						if got.Err != want.Err {
							t.Fatalf("workers=%d: err %q != golden %q", workers, got.Err, want.Err)
						}
						if compactJSON(t, got.Answer) != compactJSON(t, want.Answer) {
							t.Fatalf("workers=%d: answer diverges from pre-refactor capture:\n got %s\nwant %s",
								workers, got.Answer, want.Answer)
						}
						if got.Stats != want.Stats {
							t.Fatalf("workers=%d: stats %+v != golden %+v", workers, got.Stats, want.Stats)
						}
						if got.SpanDigest != want.SpanDigest {
							if len(want.Spans) > 0 {
								var wantRoot trace.Span
								if err := json.Unmarshal(want.Spans, &wantRoot); err != nil {
									t.Fatalf("unmarshal golden spans: %v", err)
								}
								requireSpansEqual(t, &wantRoot, root, "golden")
							}
							t.Fatalf("workers=%d: span/round stream digest %s != golden %s",
								workers, got.SpanDigest, want.SpanDigest)
						}
					}
				})
			}
		}
	}
}
