// Long-horizon tracking: the steady-state questions of §5. A sensor
// network tracks a dispersing cloud of targets (pattern-recognition /
// surveillance motivation of §1) and asks what the configuration looks
// like "in the limit":
//
//   - which targets form the convex hull of the cloud eventually
//     (Proposition 5.4),
//   - which pair ends up farthest apart and how the squared diameter
//     grows with time (Proposition 5.6, Corollary 5.7),
//   - the eventual minimal-area bounding rectangle and its area as a
//     function of time (Theorem 5.8, Corollary 5.9), and
//   - the eventual nearest neighbour of a chosen target
//     (Proposition 5.2).
//
// Run: go run ./examples/tracking
package main

import (
	"fmt"
	"math"
	"math/rand"

	"dyncg"
)

func main() {
	r := rand.New(rand.NewSource(5))
	// Targets radiate from a small region with distinct headings; two
	// stragglers stay put (and so end up interior).
	var targets []dyncg.Point
	n := 14
	for i := 0; i < n; i++ {
		u := 2*float64(i)/float64(n) - 1
		den := 1 + u*u
		vx, vy := (1-u*u)/den, 2*u/den // unit headings around the circle
		targets = append(targets, dyncg.NewPoint(
			dyncg.Polynomial(r.Float64()*4-2, vx*(1+r.Float64())),
			dyncg.Polynomial(r.Float64()*4-2, vy*(1+r.Float64())),
		))
	}
	targets = append(targets,
		dyncg.NewPoint(dyncg.Polynomial(0.5), dyncg.Polynomial(0.25)),
		dyncg.NewPoint(dyncg.Polynomial(-0.5), dyncg.Polynomial(-0.25)),
	)
	sys, err := dyncg.NewSystem(targets)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tracking %d targets (k=%d motion)\n\n", sys.N(), sys.K)

	// Steady-state hull.
	m := cube(8 * sys.N())
	hull, err := dyncg.SteadyHull(m, sys)
	if err != nil {
		panic(err)
	}
	fmt.Printf("eventual hull (%d of %d targets, CCW): %v\n", len(hull), sys.N(), hull)
	fmt.Printf("  [static stragglers #%d and #%d are eventually interior]\n\n", n, n+1)

	// Farthest pair and the diameter function.
	m2 := cube(8 * sys.N())
	a, b, d2, err := dyncg.SteadyFarthestPair(m2, sys)
	if err != nil {
		panic(err)
	}
	fmt.Printf("eventual farthest pair: #%d and #%d\n", a, b)
	fmt.Printf("  squared diameter function: d²(t) = %v\n", d2)
	fmt.Printf("  e.g. d(100) = %.2f, d(1000) = %.2f\n\n",
		math.Sqrt(d2.Eval(100)), math.Sqrt(d2.Eval(1000)))

	// Minimal-area bounding rectangle in the limit.
	m3 := cube(8 * sys.N())
	rect, err := dyncg.SteadyMinAreaRect(m3, sys)
	if err != nil {
		panic(err)
	}
	fmt.Printf("eventual min-area bounding rectangle: base on hull edge %d\n", rect.Edge)
	fmt.Printf("  area(t) → %v (area at t=1000: %.1f)\n\n", rect.Area, rect.Area.Eval(1000))

	// Steady-state nearest neighbour of target 0.
	m4, err := dyncg.NewMachine(dyncg.Mesh, sys.N())
	if err != nil {
		panic(err)
	}
	nn, err := dyncg.SteadyNearestNeighbor(m4, sys, 0, false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("eventual nearest neighbour of #0: #%d\n", nn)
	fmt.Printf("simulated times: hull %d, farthest %d, rect %d, NN %d steps\n",
		m.Stats().Time(), m2.Stats().Time(), m3.Stats().Time(), m4.Stats().Time())
}

// cube builds an n-PE hypercube machine through the options facade,
// panicking on bad sizes — fine for an example, use the error in real code.
func cube(n int) *dyncg.Machine {
	m, err := dyncg.NewMachine(dyncg.Hypercube, n)
	if err != nil {
		panic(err)
	}
	return m
}
