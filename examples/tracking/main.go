// Long-horizon tracking on the streaming API: the surveillance
// motivation of §1 (a sensor network tracking a cloud of targets) as a
// batch-dynamic scenario session. Instead of re-running Theorem 4.1 from
// scratch every time the picture changes, the session keeps the merge
// tree of distance envelopes resident and each scan streams a delta
// batch — new contacts appear, stale tracks drop, course changes
// retarget — redoing only the O(k log n) dirty merge paths.
//
// Every scan's maintained closest-target sequence is bit-identical to a
// from-scratch rebuild on the same machine (the session contract); the
// example audits one scan against Session.Rebuild and reports the
// incremental work the batch actually caused.
//
// The epilogue asks a §5 steady-state question of the final picture —
// which surviving targets form the eventual convex hull (Proposition
// 5.4) — showing the one-shot and streaming surfaces side by side.
//
// Run: go run ./examples/tracking
package main

import (
	"fmt"
	"math/rand"
	"reflect"

	"dyncg"
)

const capacity = 32 // max live targets over the session's lifetime

func main() {
	r := rand.New(rand.NewSource(5))

	// Initial picture: the sensor (target 0, stationary at the origin)
	// plus a dozen contacts radiating outward with distinct headings.
	targets := []dyncg.Point{
		dyncg.NewPoint(dyncg.Polynomial(0), dyncg.Polynomial(0)),
	}
	n := 12
	for i := 0; i < n; i++ {
		targets = append(targets, contact(r, i, n))
	}
	sys, err := dyncg.NewSystem(targets)
	if err != nil {
		panic(err)
	}

	// One machine, sized once for the session's whole lifetime, then
	// pinned: λ-envelope capacity for 32 targets of degree sys.K.
	pes, err := dyncg.SessionPEs(dyncg.Hypercube, dyncg.SessionClosestPointSeq, capacity, sys.K)
	if err != nil {
		panic(err)
	}
	m, err := dyncg.NewMachine(dyncg.Hypercube, pes)
	if err != nil {
		panic(err)
	}
	s, err := dyncg.NewSession(m, dyncg.SessionConfig{
		Algorithm: dyncg.SessionClosestPointSeq,
		Origin:    0,
		Capacity:  capacity,
	}, sys)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tracking session: %d contacts on a %d-PE hypercube (capacity %d)\n\n",
		sys.N()-1, pes, capacity)
	report(s)

	// Scan 1: two new contacts appear, one track goes stale.
	ids, stats, err := s.Apply(
		dyncg.InsertPoint(contact(r, n, n)),
		dyncg.InsertPoint(contact(r, n+1, n)),
		dyncg.DeletePoint(3),
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("scan 1: +2 contacts (ids %v), -1 stale track — %d dirty leaves, %d merged nodes\n",
		ids, stats.DirtyLeaves, stats.MergedNodes)
	report(s)

	// Scan 2: a course change — contact 5 turns toward the sensor.
	_, stats, err = s.Apply(dyncg.RetargetPoint(5,
		dyncg.NewPoint(dyncg.Polynomial(8, -1), dyncg.Polynomial(6, -0.75))))
	if err != nil {
		panic(err)
	}
	fmt.Printf("scan 2: contact 5 turns inbound — %d dirty leaves, %d merged nodes\n",
		stats.DirtyLeaves, stats.MergedNodes)
	report(s)

	// Audit the session contract: the maintained answer must be
	// bit-identical to a from-scratch rebuild on the same machine.
	rebuilt, err := s.Rebuild()
	if err != nil {
		panic(err)
	}
	if !reflect.DeepEqual(s.Result(), rebuilt) {
		panic("maintained result diverged from from-scratch rebuild")
	}
	fmt.Printf("audit: maintained sequence bit-identical to a from-scratch rebuild (%d batches applied)\n\n",
		s.Updates())

	// Epilogue (§5): which surviving targets form the eventual hull of
	// the final picture (Proposition 5.4), via the one-shot surface.
	var finalPts []dyncg.Point
	live := s.Points()
	for _, id := range live {
		p, _ := s.Point(id)
		finalPts = append(finalPts, p)
	}
	finalSys, err := dyncg.NewSystem(finalPts)
	if err != nil {
		panic(err)
	}
	hm, err := dyncg.NewMachine(dyncg.Hypercube, 8*finalSys.N())
	if err != nil {
		panic(err)
	}
	hull, err := dyncg.SteadyHull(hm, finalSys)
	if err != nil {
		panic(err)
	}
	ids = make([]int, len(hull))
	for i, h := range hull {
		ids[i] = live[h]
	}
	fmt.Printf("eventual hull of the final picture (Proposition 5.4): targets %v\n", ids)
}

// contact builds the i-th radiating contact: distinct heading around the
// circle, random launch point near the sensor.
func contact(r *rand.Rand, i, n int) dyncg.Point {
	u := 2*float64(i%n)/float64(n) - 1 + 0.01*float64(i/n)
	den := 1 + u*u
	vx, vy := (1-u*u)/den, 2*u/den
	return dyncg.NewPoint(
		dyncg.Polynomial(r.Float64()*4-2, vx*(1+r.Float64())),
		dyncg.Polynomial(r.Float64()*4-2, vy*(1+r.Float64())),
	)
}

// report prints the maintained closest-target sequence: who is nearest
// the sensor on which time interval (Theorem 4.1, kept current by the
// session instead of recomputed).
func report(s *dyncg.Session) {
	for _, ev := range s.Result().Neighbors {
		fmt.Printf("  closest on [%g, %g): target %d\n", ev.Lo, ev.Hi, ev.Point)
	}
	fmt.Println()
}
