// Robot-swarm containment: §4.3's container questions (the paper's
// robotics motivation). A swarm of robots disperses from a staging area
// and later regroups; the operator asks:
//
//  1. during which time windows does the whole swarm fit inside a fixed
//     transport crate (Theorem 4.6: containment intervals),
//  2. how does the side of the smallest bounding cube evolve
//     (Theorem 4.7: the edge-length function D(t)), and
//  3. what is the tightest the swarm ever gets, and when
//     (Corollary 4.8: the smallest-ever bounding cube).
//
// Run: go run ./examples/swarm
package main

import (
	"fmt"
	"math"
	"math/rand"

	"dyncg"
	"dyncg/internal/poly"
)

func main() {
	r := rand.New(rand.NewSource(11))
	// Robots in 3-D: they start spread out, converge toward a rendezvous
	// around t ≈ 6, then drift apart again (quadratic motion, k = 2).
	var robots []dyncg.Point
	for i := 0; i < 12; i++ {
		coords := make([]float64, 3)
		for c := range coords {
			coords[c] = r.Float64()*40 - 20
		}
		// Trajectory per coordinate: x(t) = x0·(1 − t/6)² + drift·(t/6)²,
		// i.e. the robot moves from x0 to its small drift offset by t = 6
		// and overshoots outward afterwards.
		drift := (r.Float64()*2 - 1) * 4
		robots = append(robots, dyncg.NewPoint(
			quad(coords[0], drift),
			quad(coords[1], (r.Float64()*2-1)*4),
			quad(coords[2], (r.Float64()*2-1)*4),
		))
	}
	sys, err := dyncg.NewSystem(robots)
	if err != nil {
		panic(err)
	}
	fmt.Printf("swarm of %d robots in %d-D, k=%d motion\n\n", sys.N(), sys.D, sys.K)

	m := cube(dyncg.EnvelopePEs(sys.N(), sys.K+2))

	// 1. When does the swarm fit in a 10×10×10 crate?
	crate := []float64{10, 10, 10}
	ivs, err := dyncg.ContainmentIntervals(m, sys, crate)
	if err != nil {
		panic(err)
	}
	fmt.Printf("the swarm fits in a %v crate during:\n", crate)
	if len(ivs) == 0 {
		fmt.Println("  never")
	}
	for _, iv := range ivs {
		hi := "∞"
		if !math.IsInf(iv.Hi, 1) {
			hi = fmt.Sprintf("%.3f", iv.Hi)
		}
		fmt.Printf("  [%.3f, %s]\n", iv.Lo, hi)
	}

	// 2. The bounding-cube edge-length function.
	m2 := cube(dyncg.EnvelopePEs(sys.N(), sys.K+2))
	dfn, err := dyncg.SmallestHypercubeEdge(m2, sys)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nbounding-cube edge length D(t) has %d pieces; samples:\n", len(dfn))
	for _, t := range []float64{0, 3, 6, 9, 12} {
		if v, ok := dfn.Eval(t); ok {
			fmt.Printf("  D(%4.1f) = %6.2f\n", t, v)
		}
	}

	// 3. The tightest configuration ever reached.
	m3 := cube(dyncg.EnvelopePEs(sys.N(), sys.K+2))
	dmin, tmin, err := dyncg.SmallestEverHypercube(m3, sys)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nsmallest-ever bounding cube: edge %.3f at t = %.3f\n", dmin, tmin)
	fmt.Printf("simulated time: containment %d, D(t) %d, min %d steps\n",
		m.Stats().Time(), m2.Stats().Time(), m3.Stats().Time())
}

// quad builds x(t) = x0·(1 − t/6)² + drift·(t/6)² expanded into
// coefficients: the robot reaches its drift offset at the rendezvous time
// t = 6.
func quad(x0, drift float64) poly.Poly {
	return dyncg.Polynomial(x0, -x0/3, (x0+drift)/36)
}

// cube builds an n-PE hypercube machine through the options facade,
// panicking on bad sizes — fine for an example, use the error in real code.
func cube(n int) *dyncg.Machine {
	m, err := dyncg.NewMachine(dyncg.Hypercube, n)
	if err != nil {
		panic(err)
	}
	return m
}
