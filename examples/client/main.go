// Client: talk to a running dyncgd daemon over its v1 JSON protocol.
// The request/response structs are written out with plain stdlib JSON —
// exactly what a client in any language would send — so this file doubles
// as wire-schema documentation.
//
//	go run ./cmd/dyncgd &           # start the daemon on :8080
//	go run ./examples/client            # one-shot request
//	go run ./examples/client -session   # stateful session round-trip
//
// -session drives the batch-dynamic surface — create → update → query →
// delete — and cross-checks every maintained answer against a direct
// dyncg facade session running the same scenario in-process, exiting
// non-zero on any divergence (scripts/server_smoke.sh runs this mode in
// CI).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"

	"dyncg"
)

// request is the v1 envelope of POST /v1/<algorithm>. A system is
// point → coordinate → ascending polynomial coefficients, so
// [[[0,1],[0]], ...] is a point at (t, 0).
type request struct {
	V       int           `json:"v"`
	System  [][][]float64 `json:"system"`
	Origin  int           `json:"origin,omitempty"`
	Options options       `json:"options,omitempty"`
}

type options struct {
	Topology string `json:"topology,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	Faults   string `json:"faults,omitempty"`
	Trace    bool   `json:"trace,omitempty"`
}

// response is the v1 response envelope; result is left raw because its
// shape depends on the algorithm (here: a closest-point sequence).
type response struct {
	V         int    `json:"v"`
	Algorithm string `json:"algorithm"`
	Machine   struct {
		Topology string `json:"topology"`
		PEs      int    `json:"pes"`
	} `json:"machine"`
	Stats struct {
		Time      int64 `json:"time"`
		CommSteps int64 `json:"comm_steps"`
		Rounds    int64 `json:"rounds"`
	} `json:"stats"`
	Pool struct {
		Hit bool `json:"hit"`
	} `json:"pool"`
	Result []neighborEvent `json:"result"`
}

// neighborEvent is one element of a closest-point sequence. Interval
// ends may be the JSON string "inf", so the bounds decode into any.
type neighborEvent struct {
	Point int `json:"point"`
	Lo    any `json:"lo"`
	Hi    any `json:"hi"`
}

// The session wire envelopes (POST /v1/sessions and friends).
type sessionCreateRequest struct {
	V         int           `json:"v"`
	Algorithm string        `json:"algorithm"`
	System    [][][]float64 `json:"system"`
	Origin    int           `json:"origin,omitempty"`
}

type sessionDelta struct {
	Op    string      `json:"op"`
	ID    int         `json:"id,omitempty"`
	Point [][]float64 `json:"point,omitempty"`
}

type sessionUpdateRequest struct {
	V      int            `json:"v"`
	Deltas []sessionDelta `json:"deltas"`
}

type sessionResponse struct {
	V       int `json:"v"`
	Session struct {
		ID      string `json:"id"`
		Points  []int  `json:"points"`
		Updates uint64 `json:"updates"`
	} `json:"session"`
	Inserted    []int           `json:"inserted"`
	DirtyLeaves int             `json:"dirty_leaves"`
	MergedNodes int             `json:"merged_nodes"`
	Result      []neighborEvent `json:"result"`
	Verified    *bool           `json:"verified"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "dyncgd base URL")
	topo := flag.String("topo", "hypercube", "machine family: mesh|hypercube|ccc|shuffle")
	session := flag.Bool("session", false, "drive a stateful session round-trip instead of a one-shot request")
	flag.Parse()

	if *session {
		runSession(*addr)
		return
	}

	// Three moving points in the plane (the quickstart system):
	// P0 sits at the origin, P1 flies east, P2 dives toward P0.
	req := request{
		V:       1,
		System:  quickstartWire(),
		Origin:  0,
		Options: options{Topology: *topo},
	}
	body, err := json.Marshal(req)
	if err != nil {
		fatal(err)
	}
	raw, hdr := do(http.MethodPost, *addr+"/v1/closest-point-sequence", body)
	var resp response
	if err := json.Unmarshal(raw, &resp); err != nil {
		fatal(err)
	}

	fmt.Printf("served by member %q, source %q, api v%s\n",
		hdr.Get("X-Dyncg-Member"), hdr.Get("X-Dyncg-Source"), hdr.Get("X-Dyncg-Api-Version"))
	fmt.Printf("closest points to P0 over time (served by a %d-PE %s, pool hit: %v):\n",
		resp.Machine.PEs, resp.Machine.Topology, resp.Pool.Hit)
	for _, ev := range resp.Result {
		fmt.Printf("  P%-2d on [%v, %v]\n", ev.Point, ev.Lo, ev.Hi)
	}
	fmt.Printf("simulated parallel time: %d steps (%d comm rounds)\n",
		resp.Stats.Time, resp.Stats.Rounds)
}

// runSession drives create → update → query → delete against the daemon
// and replays the identical scenario on a direct facade session,
// demanding the two answers agree event-for-event at every step.
func runSession(addr string) {
	// The daemon-side session.
	var created sessionResponse
	mustDecode(post(addr+"/v1/sessions", sessionCreateRequest{
		V: 1, Algorithm: "closest-point-sequence", System: quickstartWire(),
	}), &created)
	id := created.Session.ID
	fmt.Printf("session %s created over %d points\n", id, len(created.Session.Points))

	// The in-process oracle: the same scenario on a facade session.
	sys, err := dyncg.NewSystem(quickstartPoints())
	if err != nil {
		fatal(err)
	}
	capacity := 2 * sys.N() // the server-side default: max(2n, 8)
	if capacity < 8 {
		capacity = 8
	}
	pes, err := dyncg.SessionPEs(dyncg.Hypercube, dyncg.SessionClosestPointSeq, capacity, sys.K)
	if err != nil {
		fatal(err)
	}
	m, err := dyncg.NewMachine(dyncg.Hypercube, pes)
	if err != nil {
		fatal(err)
	}
	direct, err := dyncg.NewSession(m, dyncg.SessionConfig{
		Algorithm: dyncg.SessionClosestPointSeq,
		Capacity:  capacity,
	}, sys)
	if err != nil {
		fatal(err)
	}
	compare("create", created.Result, direct.Result().Neighbors)

	// One delta batch: a new contact appears and P2 changes course.
	p3 := dyncg.NewPoint(dyncg.Polynomial(3, -1), dyncg.Polynomial(-4, 1))
	p2 := dyncg.NewPoint(dyncg.Polynomial(1), dyncg.Polynomial(30, -2))
	var updated sessionResponse
	mustDecode(post(addr+"/v1/sessions/"+id+"/update", sessionUpdateRequest{
		V: 1,
		Deltas: []sessionDelta{
			{Op: "insert", Point: wirePoint(p3)},
			{Op: "retarget", ID: 2, Point: wirePoint(p2)},
		},
	}), &updated)
	if _, _, err := direct.Apply(dyncg.InsertPoint(p3), dyncg.RetargetPoint(2, p2)); err != nil {
		fatal(err)
	}
	fmt.Printf("update applied: inserted %v, %d dirty leaves, %d merged nodes\n",
		updated.Inserted, updated.DirtyLeaves, updated.MergedNodes)
	compare("update", updated.Result, direct.Result().Neighbors)

	// Query with the server-side bit-identity audit on.
	var queried sessionResponse
	mustDecode(get(addr+"/v1/sessions/"+id+"/query?verify=1"), &queried)
	if queried.Verified == nil || !*queried.Verified {
		fatal(fmt.Errorf("server verify=1 audit failed"))
	}
	compare("query", queried.Result, direct.Result().Neighbors)
	fmt.Println("query verified bit-identical to a from-scratch rebuild")

	// Delete; the session must be gone.
	req, err := http.NewRequest(http.MethodDelete, addr+"/v1/sessions/"+id, nil)
	if err != nil {
		fatal(err)
	}
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("delete returned %s", hr.Status))
	}
	if hr, err = http.Get(addr + "/v1/sessions/" + id + "/query"); err != nil {
		fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusNotFound {
		fatal(fmt.Errorf("deleted session still answers: %s", hr.Status))
	}
	fmt.Println("session deleted; HTTP and direct facade sessions agreed at every step")
}

// compare checks a wire result against the facade session's events,
// treating the JSON string "inf"/"-inf" as ±infinity.
func compare(step string, wire []neighborEvent, want []dyncg.NeighborEvent) {
	if len(wire) != len(want) {
		fatal(fmt.Errorf("%s: HTTP session returned %d events, facade %d", step, len(wire), len(want)))
	}
	for i, ev := range wire {
		if ev.Point != want[i].Point || bound(ev.Lo) != want[i].Lo || bound(ev.Hi) != want[i].Hi {
			fatal(fmt.Errorf("%s: event %d diverged: HTTP {P%d [%v,%v]}, facade %+v",
				step, i, ev.Point, ev.Lo, ev.Hi, want[i]))
		}
	}
	fmt.Printf("  %s: %d events match the direct facade session\n", step, len(wire))
}

func bound(v any) float64 {
	switch b := v.(type) {
	case float64:
		return b
	case string:
		if b == "-inf" {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	fatal(fmt.Errorf("unexpected interval bound %v", v))
	return 0
}

func quickstartPoints() []dyncg.Point {
	return []dyncg.Point{
		dyncg.NewPoint(dyncg.Polynomial(0), dyncg.Polynomial(0)),
		dyncg.NewPoint(dyncg.Polynomial(1, 2), dyncg.Polynomial(0)),
		dyncg.NewPoint(dyncg.Polynomial(0), dyncg.Polynomial(20, -1)),
	}
}

func quickstartWire() [][][]float64 {
	return [][][]float64{
		{{0}, {0}},
		{{1, 2}, {0}},
		{{0}, {20, -1}},
	}
}

func wirePoint(p dyncg.Point) [][]float64 {
	coords := make([][]float64, len(p.Coord))
	for j, c := range p.Coord {
		coords[j] = append([]float64(nil), c...)
	}
	return coords
}

// apiError is the v1 error envelope: a stable machine-readable code,
// a human message, whether the condition is load-shaped (worth one
// retry), and — behind a fleet front door — the member the failure is
// attributed to.
type apiError struct {
	V         int    `json:"v"`
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
	Member    string `json:"member"`
}

func post(url string, body any) []byte {
	raw, err := json.Marshal(body)
	if err != nil {
		fatal(err)
	}
	b, _ := do(http.MethodPost, url, raw)
	return b
}

func get(url string) []byte {
	b, _ := do(http.MethodGet, url, nil)
	return b
}

// do issues one request, decoding the typed error envelope on any
// non-200. Retryable codes (queue_full, draining, …) get exactly one
// client-side retry; everything else is fatal with the code and the
// attributed member surfaced.
func do(method, url string, body []byte) ([]byte, http.Header) {
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			fatal(err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		hr, err := http.DefaultClient.Do(req)
		if err != nil {
			fatal(fmt.Errorf("%w (is dyncgd running? go run ./cmd/dyncgd)", err))
		}
		raw, err := io.ReadAll(hr.Body)
		hr.Body.Close()
		if err != nil {
			fatal(err)
		}
		if hr.StatusCode == http.StatusOK {
			return raw, hr.Header
		}
		var e apiError
		if json.Unmarshal(raw, &e) == nil && e.Code != "" {
			if e.Retryable && attempt == 0 {
				fmt.Fprintf(os.Stderr, "client: %s is retryable, retrying once\n", e.Code)
				continue
			}
			member := ""
			if e.Member != "" {
				member = fmt.Sprintf(" (member %s)", e.Member)
			}
			fatal(fmt.Errorf("daemon error %s, code %s%s: %s", hr.Status, e.Code, member, e.Message))
		}
		fatal(fmt.Errorf("daemon returned %s: %s", hr.Status, raw))
	}
}

func mustDecode(raw []byte, into any) {
	if err := json.Unmarshal(raw, into); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "client:", err)
	os.Exit(1)
}
