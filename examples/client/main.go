// Client: talk to a running dyncgd daemon over its v1 JSON protocol.
// The request/response structs are written out with plain stdlib JSON —
// exactly what a client in any language would send — so this file doubles
// as wire-schema documentation.
//
//	go run ./cmd/dyncgd &      # start the daemon on :8080
//	go run ./examples/client
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
)

// request is the v1 envelope of POST /v1/<algorithm>. A system is
// point → coordinate → ascending polynomial coefficients, so
// [[[0,1],[0]], ...] is a point at (t, 0).
type request struct {
	V       int           `json:"v"`
	System  [][][]float64 `json:"system"`
	Origin  int           `json:"origin,omitempty"`
	Options options       `json:"options,omitempty"`
}

type options struct {
	Topology string `json:"topology,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	Faults   string `json:"faults,omitempty"`
	Trace    bool   `json:"trace,omitempty"`
}

// response is the v1 response envelope; result is left raw because its
// shape depends on the algorithm (here: a closest-point sequence).
type response struct {
	V         int    `json:"v"`
	Algorithm string `json:"algorithm"`
	Machine   struct {
		Topology string `json:"topology"`
		PEs      int    `json:"pes"`
	} `json:"machine"`
	Stats struct {
		Time      int64 `json:"time"`
		CommSteps int64 `json:"comm_steps"`
		Rounds    int64 `json:"rounds"`
	} `json:"stats"`
	Pool struct {
		Hit bool `json:"hit"`
	} `json:"pool"`
	Result []neighborEvent `json:"result"`
}

// neighborEvent is one element of a closest-point sequence. Interval
// ends may be the JSON string "inf", so the bounds decode into any.
type neighborEvent struct {
	Point int `json:"point"`
	Lo    any `json:"lo"`
	Hi    any `json:"hi"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "dyncgd base URL")
	topo := flag.String("topo", "hypercube", "machine family: mesh|hypercube|ccc|shuffle")
	flag.Parse()

	// Three moving points in the plane (the quickstart system):
	// P0 sits at the origin, P1 flies east, P2 dives toward P0.
	req := request{
		V: 1,
		System: [][][]float64{
			{{0}, {0}},
			{{1, 2}, {0}},
			{{0}, {20, -1}},
		},
		Origin:  0,
		Options: options{Topology: *topo},
	}
	body, err := json.Marshal(req)
	if err != nil {
		fatal(err)
	}

	hr, err := http.Post(*addr+"/v1/closest-point-sequence", "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(fmt.Errorf("%w (is dyncgd running? go run ./cmd/dyncgd)", err))
	}
	defer hr.Body.Close()
	raw, err := io.ReadAll(hr.Body)
	if err != nil {
		fatal(err)
	}
	if hr.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("daemon returned %s: %s", hr.Status, raw))
	}
	var resp response
	if err := json.Unmarshal(raw, &resp); err != nil {
		fatal(err)
	}

	fmt.Printf("closest points to P0 over time (served by a %d-PE %s, pool hit: %v):\n",
		resp.Machine.PEs, resp.Machine.Topology, resp.Pool.Hit)
	for _, ev := range resp.Result {
		fmt.Printf("  P%-2d on [%v, %v]\n", ev.Point, ev.Lo, ev.Hi)
	}
	fmt.Printf("simulated parallel time: %d steps (%d comm rounds)\n",
		resp.Stats.Time, resp.Stats.Rounds)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "client:", err)
	os.Exit(1)
}
