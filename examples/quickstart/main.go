// Quickstart: build a small dynamic system, construct the minimum
// function of the distances to a query point (Theorem 4.1), and read off
// the chronological closest-neighbour sequence — the paper's central
// primitive — on both simulated machines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"dyncg"
)

func main() {
	// Three moving points in the plane (k = 1 motion):
	//   P0: sits at the origin.
	//   P1: starts near P0 and flies away east.
	//   P2: starts far north and dives toward P0.
	sys, err := dyncg.NewSystem([]dyncg.Point{
		dyncg.NewPoint(dyncg.Polynomial(0), dyncg.Polynomial(0)),
		dyncg.NewPoint(dyncg.Polynomial(1, 2), dyncg.Polynomial(0)),
		dyncg.NewPoint(dyncg.Polynomial(0), dyncg.Polynomial(20, -1)),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("system: n=%d points, k=%d motion, d=%d\n\n", sys.N(), sys.K, sys.D)

	for _, topo := range []dyncg.Topology{dyncg.Hypercube, dyncg.Mesh} {
		m, err := dyncg.NewMachine(topo, dyncg.EnvelopePEs(sys.N(), 2*sys.K))
		if err != nil {
			panic(err)
		}
		seq, err := dyncg.ClosestPointSequence(m, sys, 0)
		if err != nil {
			panic(err)
		}
		fmt.Printf("closest points to P0 over time (%s):\n", topo)
		for _, ev := range seq {
			hi := "∞"
			if !math.IsInf(ev.Hi, 1) {
				hi = fmt.Sprintf("%.3f", ev.Hi)
			}
			fmt.Printf("  P%-2d on [%.3f, %s]\n", ev.Point, ev.Lo, hi)
		}
		fmt.Printf("simulated parallel time: %v\n\n", m.Stats())
	}

	// The steady-state shortcut (Proposition 5.2) answers only the
	// "final" question, much faster.
	m, err := dyncg.NewMachine(dyncg.Mesh, sys.N())
	if err != nil {
		panic(err)
	}
	nn, err := dyncg.SteadyNearestNeighbor(m, sys, 0, false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("steady-state nearest neighbour of P0: P%d (in %d simulated steps)\n",
		nn, m.Stats().Time())
}
