// Influence regions over time: §6's closing generalisation in action.
// The paper notes its algorithms work for ANY function family with Θ(1)
// storage/evaluation and Θ(1)-computable bounded pairwise intersections —
// not just polynomials. Here the functions are inverse-square signal
// strengths of moving transmitters,
//
//	S_i(t) = P_i / (1 + d_i²(t)),
//
// rational functions of bounded degree (curve.Rational). The *upper*
// envelope of {S_i} tells a receiver at the origin which transmitter is
// strongest during which time intervals — computed by exactly the same
// Theorem 3.2 machinery as the polynomial problems.
//
// Run: go run ./examples/influence
package main

import (
	"fmt"
	"math"

	"dyncg/internal/core"
	"dyncg/internal/curve"
	"dyncg/internal/motion"
	"dyncg/internal/penvelope"
	"dyncg/internal/pieces"
	"dyncg/internal/poly"
)

func main() {
	// Moving transmitters with different powers; the receiver sits at
	// the origin.
	type tx struct {
		name  string
		power float64
		pt    motion.Point
	}
	txs := []tx{
		{"alpha", 100, motion.NewPoint(poly.New(2), poly.New(0))},        // parked nearby
		{"bravo", 900, motion.NewPoint(poly.New(30, -2), poly.New(1))},   // drives past
		{"charlie", 250, motion.NewPoint(poly.New(-80, 3), poly.New(2))}, // approaches late
		{"delta", 64, motion.NewPoint(poly.New(0), poly.New(4, 0.1))},    // drifts away
	}
	receiver := motion.NewPoint(poly.New(0), poly.New(0))

	curves := make([]curve.Curve, len(txs))
	for i, t := range txs {
		d2 := receiver.DistSq(t.pt) // polynomial of degree ≤ 2k
		den := d2.Add(poly.Constant(1))
		curves[i] = curve.MustRational(poly.Constant(t.power), den)
	}

	// Upper envelope on the hypercube: rationals of this shape cross at
	// most 4 times pairwise (degree-4 cross-multiplied polynomial).
	m := core.CubeFor(len(txs), 4)
	env, err := penvelope.EnvelopeOfCurves(m, curves, pieces.Max)
	if err != nil {
		panic(err)
	}
	fmt.Println("strongest transmitter at the receiver, over time:")
	for _, p := range env {
		hi := "∞"
		if !math.IsInf(p.Hi, 1) {
			hi = fmt.Sprintf("%6.2f", p.Hi)
		}
		mid := p.Lo + 1
		if !math.IsInf(p.Hi, 1) {
			mid = (p.Lo + p.Hi) / 2
		}
		fmt.Printf("  [%6.2f, %6s]  %-8s (signal %.2f mid-interval)\n",
			p.Lo, hi, txs[p.ID].name, p.F.Eval(mid))
	}
	fmt.Printf("\nsimulated parallel time: %v\n", m.Stats())
}
