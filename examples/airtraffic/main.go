// Air-traffic watch: the paper's motivating application (§1 cites air
// traffic control). A controller tracks aircraft with known linear flight
// plans and asks two questions about one monitored aircraft:
//
//  1. which aircraft is closest to it during which time windows
//     (Theorem 4.1: the chronological closest-point sequence), and
//  2. does any aircraft ever *collide* with it, and when
//     (Theorem 4.2: sorted collision times).
//
// Run: go run ./examples/airtraffic
package main

import (
	"fmt"
	"math"
	"math/rand"

	"dyncg"
)

func main() {
	r := rand.New(rand.NewSource(7))
	// The monitored aircraft cruises east along y = 0.
	planes := []dyncg.Point{
		dyncg.NewPoint(dyncg.Polynomial(0, 4), dyncg.Polynomial(0)),
	}
	// Crossing traffic: aircraft on transversal courses, two of which are
	// on genuine collision courses with the monitored one (they meet it
	// at t = 5 and t = 12).
	planes = append(planes,
		dyncg.NewPoint(dyncg.Polynomial(20), dyncg.Polynomial(30, -6)),     // meets (20,0) at t=5
		dyncg.NewPoint(dyncg.Polynomial(96, -4), dyncg.Polynomial(36, -3)), // meets (48,0) at t=12
	)
	// Background traffic with random safe courses.
	for i := 0; i < 13; i++ {
		planes = append(planes, dyncg.NewPoint(
			dyncg.Polynomial(r.Float64()*100, r.Float64()*4-2),
			dyncg.Polynomial(10+r.Float64()*90, r.Float64()*4-2),
		))
	}
	sys, err := dyncg.NewSystem(planes)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tracking %d aircraft, monitored aircraft = #0\n\n", sys.N())

	// Question 1: closest aircraft over time.
	m := cube(dyncg.EnvelopePEs(sys.N(), 2*sys.K))
	seq, err := dyncg.ClosestPointSequence(m, sys, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("closest aircraft to #0 over time:")
	for _, ev := range seq {
		hi := "∞"
		if !math.IsInf(ev.Hi, 1) {
			hi = fmt.Sprintf("%6.2f", ev.Hi)
		}
		fmt.Printf("  [%6.2f, %6s]  aircraft #%d\n", ev.Lo, hi, ev.Point)
	}
	fmt.Printf("(simulated hypercube time: %d steps)\n\n", m.Stats().Time())

	// Question 2: collision alarms.
	m2 := cube(8 * sys.N())
	collisions, err := dyncg.CollisionTimes(m2, sys, 0)
	if err != nil {
		panic(err)
	}
	if len(collisions) == 0 {
		fmt.Println("no collisions with the monitored aircraft")
	}
	for _, c := range collisions {
		fmt.Printf("COLLISION ALERT: aircraft #%d meets #%d at t = %.3f\n", c.A, c.B, c.T)
	}
	fmt.Printf("(simulated hypercube time: %d steps)\n", m2.Stats().Time())
}

// cube builds an n-PE hypercube machine through the options facade,
// panicking on bad sizes — fine for an example, use the error in real code.
func cube(n int) *dyncg.Machine {
	m, err := dyncg.NewMachine(dyncg.Hypercube, n)
	if err != nil {
		panic(err)
	}
	return m
}
