// Tracing: attach a tracer to a simulated machine, run two of the
// paper's algorithms, and see exactly where the simulated parallel time
// goes — as a per-phase cost tree, as an aggregate per-primitive table,
// and as a Chrome trace-event file for chrome://tracing / perfetto.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"dyncg"
)

func main() {
	r := rand.New(rand.NewSource(7))
	sys := dyncg.RandomSystem(r, 32, 1, 2, 10)

	// One machine, one tracer, two algorithms: the §4 transient
	// closest-point sequence (Theorem 4.1) and the §4 collision times
	// (Theorem 4.2) run back to back; the tracer attributes every
	// simulated step to the theorem and primitive that charged it.
	m, err := dyncg.NewMachine(dyncg.Hypercube, 8*sys.N(), dyncg.WithTracer("demo"))
	if err != nil {
		panic(err)
	}
	tr := dyncg.MachineTracer(m)

	if _, err := dyncg.ClosestPointSequence(m, sys, 0); err != nil {
		panic(err)
	}
	if _, err := dyncg.CollisionTimes(m, sys, 0); err != nil {
		panic(err)
	}
	root := tr.Finish()

	// 1. The cost tree: hierarchical attribution. The root total equals
	// m.Stats().Time() exactly — no charged step escapes.
	fmt.Printf("machine: %v\n\n", m.Stats())
	dyncg.WriteCostTree(os.Stdout, root, 3)

	// 2. The aggregate registry: which primitive dominates?
	fmt.Println()
	dyncg.CollectTraceMetrics(root).Write(os.Stdout)

	// 3. Chrome trace-event JSON, for a zoomable timeline.
	path := filepath.Join(os.TempDir(), "dyncg_trace.json")
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	if err := dyncg.WriteChromeTrace(f, root, m); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	fmt.Printf("\nchrome trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", path)
}
