package dyncg

import (
	"fmt"

	"dyncg/internal/session"
)

// Batch-dynamic scenario sessions (facade over internal/session).
//
// A Session pins one machine and keeps the algorithm's balanced merge
// tree of piecewise envelopes resident, so a batch of k trajectory
// changes recomputes only the O(k log n) dirty merge path instead of
// rebuilding from scratch. The maintained answer is bit-identical to a
// from-scratch run on the same machine — Session.Rebuild audits that
// contract on demand.

// SessionAlgo names a session-maintainable algorithm — the
// envelope-backed subset of the facade (point sequences, pair sequences,
// and the span-derived hypercube/containment family).
type SessionAlgo = session.Algo

// The session algorithms.
const (
	SessionClosestPointSeq  = session.ClosestPointSeq
	SessionFarthestPointSeq = session.FarthestPointSeq
	SessionClosestPairSeq   = session.ClosestPairSeq
	SessionFarthestPairSeq  = session.FarthestPairSeq
	SessionCubeEdge         = session.CubeEdge
	SessionSmallestEver     = session.SmallestEver
	SessionContainment      = session.Containment
)

// ParseSessionAlgo converts an algorithm name (the /v1/sessions wire
// names) into a SessionAlgo.
func ParseSessionAlgo(s string) (SessionAlgo, error) { return session.ParseAlgo(s) }

// SessionConfig configures NewSession. Algorithm is required; see
// session.Config for the zero-value defaults of the rest.
type SessionConfig = session.Config

// SessionDelta is one update operation of a batch: insert, delete, or
// retarget. Build them with InsertPoint, DeletePoint, and RetargetPoint.
type SessionDelta = session.Delta

// SessionResult is a session's maintained answer; which fields are
// populated depends on the algorithm (see session.Result).
type SessionResult = session.Result

// SessionApplyStats reports the incremental work one applied batch
// caused: dirty leaves rewritten and internal tree nodes re-merged.
type SessionApplyStats = session.ApplyStats

// InsertPoint is a delta adding a point with a fresh stable ID (returned
// by Session.Apply).
func InsertPoint(p Point) SessionDelta {
	return SessionDelta{Op: session.OpInsert, Point: p}
}

// DeletePoint is a delta removing the point with the given stable ID.
func DeletePoint(id int) SessionDelta {
	return SessionDelta{Op: session.OpDelete, ID: id}
}

// RetargetPoint is a delta replacing the trajectory of the point with
// the given stable ID.
func RetargetPoint(id int, p Point) SessionDelta {
	return SessionDelta{Op: session.OpRetarget, ID: id, Point: p}
}

// SessionPEs returns the PE prescription for a session of the given
// algorithm on the given topology (mesh or hypercube): enough processors
// to hold capacity envelopes of the algorithm's λ-complexity at degree
// maxDegree. Pass the result to NewMachine (or TopologySize for the
// exact machine size class).
func SessionPEs(topo Topology, algo SessionAlgo, capacity, maxDegree int) (int, error) {
	switch topo {
	case Mesh, Hypercube:
		return session.PEs(string(topo), algo, capacity, maxDegree), nil
	}
	return 0, fmt.Errorf("dyncg: sessions require a mesh or hypercube machine, not %q", topo)
}

// Session is a stateful batch-dynamic scenario: a pinned machine plus
// the retained merge tree of the algorithm's envelope computation.
// Sessions are not safe for concurrent use.
type Session struct {
	eng *session.Engine
}

// NewSession builds the initial structures for sys on m and returns a
// handle maintaining cfg.Algorithm. The machine must satisfy
// SessionPEs for the session's capacity and degree bound; the initial
// points get stable IDs 0..n-1.
func NewSession(m *Machine, cfg SessionConfig, sys *System) (*Session, error) {
	pts := make([]Point, len(sys.Points))
	copy(pts, sys.Points)
	eng, err := session.New(m, cfg, pts)
	if err != nil {
		return nil, err
	}
	return &Session{eng: eng}, nil
}

// Apply applies one batch of deltas atomically: either every delta
// applies and the maintained answer is refreshed incrementally, or the
// session is unchanged and the error reports the first offending delta.
// It returns the stable IDs assigned to the batch's inserts, in order.
func (s *Session) Apply(deltas ...SessionDelta) ([]int, SessionApplyStats, error) {
	return s.eng.Apply(deltas)
}

// Result returns the maintained answer. It is always current — Apply
// refreshes it before returning — and costs no simulated work.
func (s *Session) Result() SessionResult { return s.eng.Result() }

// Rebuild recomputes the answer from scratch on the session's machine
// and returns it, without touching the maintained state. It is the
// audit oracle: the result must equal Result exactly.
func (s *Session) Rebuild() (SessionResult, error) { return s.eng.Rebuild() }

// Points returns the live stable IDs, ascending.
func (s *Session) Points() []int { return s.eng.Points() }

// Point returns the current trajectory of a live stable ID.
func (s *Session) Point(id int) (Point, bool) { return s.eng.Point(id) }

// Algorithm returns the session's algorithm.
func (s *Session) Algorithm() SessionAlgo { return s.eng.Algorithm() }

// Capacity returns the maximum live population the pinned machine is
// sized for.
func (s *Session) Capacity() int { return s.eng.Capacity() }

// Updates counts the batches applied so far.
func (s *Session) Updates() uint64 { return s.eng.Updates() }
