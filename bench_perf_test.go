// Pinned host-performance benchmark suite for the op layer — the
// continuous-benchmark counterpart of bench_test.go. Where bench_test.go
// measures *simulated parallel time* (the paper's quantity), this file
// measures the *simulator's own* cost per primitive: wall-clock ns/op,
// B/op, and allocs/op of the Table-1 data movement operations in steady
// state — a warm machine whose scratch arena has reached its fixed
// point, the regime a long-running simulation (cmd/tables, the chaos
// battery, any Table-2/3 run) actually lives in.
//
// scripts/bench.sh runs exactly this suite with -benchmem, converts the
// output into BENCH_perf.json via cmd/benchgate, and (-check) gates a
// change against the committed baseline with documented tolerances —
// allocs/op is the deterministic, machine-independent gate; ns/op only
// catches catastrophic regressions. Keep the benchmark names and
// workloads pinned: the baseline is only comparable to itself.
package dyncg_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dyncg/internal/dsseq"
	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/mesh"
)

// perfTopologies mirrors topologies() but is kept separate (and pinned)
// so the regression baseline cannot drift when the simulated-time suite
// evolves.
func perfTopologies(n int) []struct {
	name string
	mk   func() *machine.M
} {
	return []struct {
		name string
		mk   func() *machine.M
	}{
		{"mesh", func() *machine.M {
			return machine.New(mesh.MustNew(dsseq.NextPow4(n), mesh.Proximity))
		}},
		{"hypercube", func() *machine.M {
			return machine.New(hypercube.MustNew(dsseq.NextPow2(n)))
		}},
	}
}

func perfVals(n int) []int {
	r := rand.New(rand.NewSource(1988))
	vals := make([]int, n)
	for i := range vals {
		vals[i] = r.Intn(1 << 20)
	}
	return vals
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BenchmarkPerf is the pinned suite: every Table-1 primitive × topology
// × n, run steady-state on one warm machine. The op under test reuses
// its register file across iterations (all primitives here are
// idempotent or value-shrinking under min, so the data stays bounded),
// and one untimed warm-up call fills the scratch arena so allocs/op
// measures the steady state, not first-touch growth.
func BenchmarkPerf(b *testing.B) {
	for _, n := range []int{256, 1024} {
		for _, tc := range perfTopologies(n) {
			ops := []struct {
				name string
				run  func(m *machine.M, regs []machine.Reg[int], seg []bool)
			}{
				{"scan", func(m *machine.M, regs []machine.Reg[int], seg []bool) {
					machine.Scan(m, regs, seg, machine.Forward, minInt)
				}},
				{"semigroup", func(m *machine.M, regs []machine.Reg[int], seg []bool) {
					machine.Semigroup(m, regs, seg, minInt)
				}},
				{"broadcast", func(m *machine.M, regs []machine.Reg[int], seg []bool) {
					machine.Spread(m, regs, seg)
				}},
				{"sort", func(m *machine.M, regs []machine.Reg[int], seg []bool) {
					machine.Sort(m, regs, func(a, b int) bool { return a < b })
				}},
				{"merge", func(m *machine.M, regs []machine.Reg[int], seg []bool) {
					machine.MergeBlocks(m, regs, len(regs), func(a, b int) bool { return a < b })
				}},
				{"compact", func(m *machine.M, regs []machine.Reg[int], seg []bool) {
					machine.Compact(m, regs, seg)
				}},
				{"route", func(m *machine.M, regs []machine.Reg[int], seg []bool) {
					dest := perfDest(len(regs))
					machine.Route(m, regs, dest)
				}},
				{"shift", func(m *machine.M, regs []machine.Reg[int], seg []bool) {
					out := machine.ShiftWithin(m, regs, len(regs), 1)
					machine.PutScratch(m, out)
				}},
			}
			for _, op := range ops {
				b.Run(fmt.Sprintf("%s/%s/n=%d", op.name, tc.name, n), func(b *testing.B) {
					m := tc.mk()
					regs := machine.Scatter(m.Size(), perfVals(m.Size()))
					seg := machine.WholeMachine(m.Size())
					op.run(m, regs, seg) // warm the arena (untimed)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						op.run(m, regs, seg)
					}
				})
			}
		}
	}
}

// perfDest is the identity permutation: Route's structured-route
// bookkeeping at full occupancy with zero data movement, the pure
// overhead path. Cached per size so the benchmark loop doesn't measure
// its construction.
var perfDestCache = map[int][]int{}

func perfDest(n int) []int {
	if d, ok := perfDestCache[n]; ok {
		return d
	}
	d := make([]int, n)
	for i := range d {
		d[i] = i
	}
	perfDestCache[n] = d
	return d
}

// BenchmarkPerfLargeN pins the scale rows of the columnar core: cheap
// data-movement primitives at n = 64k, 256k and 1M PEs, the regime the
// struct-of-arrays refactor targets. Dense rows run scan — the canonical
// flat-loop round body — through the public facade (split, columnar
// rounds, join); the par8 row exercises internal/par sharding of the
// same rounds; sparse rows run the active-set primitives at 1%
// occupancy, whose host work is O(occupied), not O(n). All rows run
// steady-state on a warm machine; the single-worker rows must hold
// 0 allocs/op (the par8 row pays a fixed, deterministic goroutine
// fan-out per round). scripts/bench.sh runs this function at its own
// pinned iteration count (BENCH_TIME_LARGE) so the 1M rows stay inside
// the bench-smoke wall-clock budget.
func BenchmarkPerfLargeN(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 18, 1 << 20} {
		b.Run(fmt.Sprintf("scan/hypercube/n=%d", n), func(b *testing.B) {
			m := machine.New(hypercube.MustNew(n))
			regs := machine.Scatter(n, perfVals(n))
			seg := machine.WholeMachine(n)
			machine.Scan(m, regs, seg, machine.Forward, minInt)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				machine.Scan(m, regs, seg, machine.Forward, minInt)
			}
		})
	}
	const big = 1 << 20
	b.Run(fmt.Sprintf("scan/mesh/n=%d", big), func(b *testing.B) {
		m := machine.New(mesh.MustNew(big, mesh.Proximity))
		regs := machine.Scatter(big, perfVals(big))
		seg := machine.WholeMachine(big)
		machine.Scan(m, regs, seg, machine.Forward, minInt)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			machine.Scan(m, regs, seg, machine.Forward, minInt)
		}
	})
	b.Run(fmt.Sprintf("scan/hypercube-par8/n=%d", big), func(b *testing.B) {
		m := machine.New(hypercube.MustNew(big), machine.WithParallel(8))
		regs := machine.Scatter(big, perfVals(big))
		seg := machine.WholeMachine(big)
		machine.Scan(m, regs, seg, machine.Forward, minInt)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			machine.Scan(m, regs, seg, machine.Forward, minInt)
		}
	})
	b.Run(fmt.Sprintf("semigroup/hypercube/n=%d", big), func(b *testing.B) {
		m := machine.New(hypercube.MustNew(big))
		regs := machine.Scatter(big, perfVals(big))
		seg := machine.WholeMachine(big)
		machine.Semigroup(m, regs, seg, minInt)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			machine.Semigroup(m, regs, seg, minInt)
		}
	})
	// Active-set rows: 1% occupancy. Both workloads are idempotent after
	// the first call (compact leaves the occupied prefix in place; sort
	// leaves the values ordered), so the loop measures steady state.
	sparseSetup := func() *machine.Sparse[int] {
		s := machine.NewSparse[int](big)
		vals := perfVals(big / 100)
		for i, v := range vals {
			s.Set(i*100, v)
		}
		return s
	}
	b.Run(fmt.Sprintf("sparse-compact/hypercube/n=%d", big), func(b *testing.B) {
		m := machine.New(hypercube.MustNew(big))
		s := sparseSetup()
		machine.SparseCompact(m, s)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			machine.SparseCompact(m, s)
		}
	})
	b.Run(fmt.Sprintf("sparse-sort/hypercube/n=%d", big), func(b *testing.B) {
		m := machine.New(hypercube.MustNew(big))
		s := sparseSetup()
		machine.SparseSort(m, s, func(a, b int) bool { return a < b })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			machine.SparseSort(m, s, func(a, b int) bool { return a < b })
		}
	})
}

// BenchmarkPerfEndToEnd pins two composite workloads — the whole-machine
// grouping pattern of Table 1 (sort + segmented scan + sort) — whose
// allocation behaviour exercises the arena across primitive boundaries.
func BenchmarkPerfEndToEnd(b *testing.B) {
	for _, n := range []int{1024} {
		for _, tc := range perfTopologies(n) {
			b.Run(fmt.Sprintf("grouping/%s/n=%d", tc.name, n), func(b *testing.B) {
				m := tc.mk()
				regs := machine.Scatter(m.Size(), perfVals(m.Size()))
				seg := machine.BlockSegments(m.Size(), 16)
				groupOnce := func() {
					machine.Sort(m, regs, func(a, b int) bool { return a < b })
					machine.Scan(m, regs, seg, machine.Forward,
						func(a, b int) int { return a })
					machine.Sort(m, regs, func(a, b int) bool { return a < b })
				}
				groupOnce() // warm the arena (untimed)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					groupOnce()
				}
			})
		}
	}
}
