// Pinned host-performance benchmarks for batch-dynamic sessions: the
// wall-clock cost of applying a delta batch against the retained merge
// tree, versus rebuilding the answer from scratch on the same machine.
// The incremental contract this suite gates: a small batch (16 of 64
// points) must beat the full rebuild in ns/op, because it redoes only
// the dirty root-paths of the tree instead of every merge.
//
// Like bench_perf_test.go, the suite runs under scripts/bench.sh with a
// pinned iteration count and is baselined in BENCH_perf.json.
package dyncg_test

import (
	"fmt"
	"testing"

	"dyncg"
)

// sessionBenchSize is both the live population and the session capacity:
// the bench measures retarget churn at a full machine, the steady state
// of a long-lived tracking scenario.
const sessionBenchSize = 64

func newBenchSession(b *testing.B) *dyncg.Session {
	b.Helper()
	pts := make([]dyncg.Point, sessionBenchSize)
	for i := range pts {
		pts[i] = benchTrajectory(i, 0)
	}
	sys, err := dyncg.NewSystem(pts)
	if err != nil {
		b.Fatal(err)
	}
	pes, err := dyncg.SessionPEs(dyncg.Hypercube, dyncg.SessionClosestPointSeq, sessionBenchSize, 1)
	if err != nil {
		b.Fatal(err)
	}
	m, err := dyncg.NewMachine(dyncg.Hypercube, pes)
	if err != nil {
		b.Fatal(err)
	}
	s, err := dyncg.NewSession(m, dyncg.SessionConfig{
		Algorithm: dyncg.SessionClosestPointSeq,
		Capacity:  sessionBenchSize,
	}, sys)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchTrajectory builds a deterministic degree-1 trajectory for a
// stable ID at a churn round. Initial positions are distinct across IDs
// for every round (the x-coordinate is dominated by 1000·id), so any
// mix of retargets keeps the population valid.
func benchTrajectory(id, round int) dyncg.Point {
	return dyncg.NewPoint(
		dyncg.Polynomial(1000*float64(id)+float64(round%7), 1+float64(round%3)),
		dyncg.Polynomial(float64(round%11), -1),
	)
}

// BenchmarkSessionUpdate measures one applied batch of k retargets
// (k = 1, 16, 64 of the 64 live points) and, as the baseline it must
// beat, the from-scratch rebuild of the same answer on the same machine.
func BenchmarkSessionUpdate(b *testing.B) {
	for _, batch := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			s := newBenchSession(b)
			deltas := make([]dyncg.SessionDelta, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range deltas {
					id := (i*batch + j) % sessionBenchSize
					deltas[j] = dyncg.RetargetPoint(id, benchTrajectory(id, i+1))
				}
				if _, _, err := s.Apply(deltas...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("rebuild", func(b *testing.B) {
		s := newBenchSession(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Rebuild(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
