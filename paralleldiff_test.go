// Differential tests for the worker-pool execution backend: on every
// topology and worker count, a machine built with machine.WithParallel
// must be observationally identical to the serial backend — same
// primitive outputs, same Stats counters, and the same trace span tree
// down to the individual RoundInfo events. This is the determinism
// contract of internal/par (disjoint shards, ordered reduction, all cost
// charging on the owning goroutine) made executable; it runs under -race
// in CI, so it also proves the sharded loops are free of data races.
package dyncg_test

import (
	"math/rand"
	"reflect"
	"testing"

	"dyncg/internal/ccc"
	"dyncg/internal/curve"
	"dyncg/internal/geom"
	"dyncg/internal/hypercube"
	"dyncg/internal/machine"
	"dyncg/internal/mesh"
	"dyncg/internal/penvelope"
	"dyncg/internal/pgeom"
	"dyncg/internal/pieces"
	"dyncg/internal/poly"
	"dyncg/internal/ratfun"
	"dyncg/internal/shuffle"
	"dyncg/internal/trace"
)

// diffTopologies returns one 64-PE instance of each of the four bundled
// topologies. Each instance is shared between the serial and parallel
// machines of a subtest (topologies are immutable, including their
// memoised cost tables).
func diffTopologies() map[string]machine.Topology {
	return map[string]machine.Topology{
		"mesh":      mesh.MustNew(64, mesh.Proximity),
		"hypercube": hypercube.MustNew(64),
		"ccc":       ccc.MustNew(4),     // 4·2^4 = 64 PEs
		"shuffle":   shuffle.MustNew(6), // 2^6 = 64 PEs
	}
}

var diffWorkers = []int{1, 2, 8}

// table1Workload exercises every Table-1 primitive on one machine and
// returns everything observable: the final register files of each phase
// plus the machine's Stats.
func table1Workload(m *machine.M, vals []int) (outs [][]machine.Reg[int], st machine.Stats) {
	n := m.Size()
	grab := func(regs []machine.Reg[int]) {
		cp := make([]machine.Reg[int], len(regs))
		copy(cp, regs)
		outs = append(outs, cp)
	}

	// Sort (bitonic, XOR rounds).
	regs := machine.Scatter(n, vals)
	machine.Sort(m, regs, func(a, b int) bool { return a < b })
	grab(regs)

	// Merge of two sorted halves.
	regs = machine.Scatter(n, vals)
	machine.SortBlocks(m, regs, n/2, func(a, b int) bool { return a < b })
	machine.MergeBlocks(m, regs, n, func(a, b int) bool { return a < b })
	grab(regs)

	// Segmented parallel prefix (shift rounds), forward and backward.
	regs = machine.Scatter(n, vals)
	seg := machine.BlockSegments(n, 16)
	machine.Scan(m, regs, seg, machine.Forward, func(a, b int) int { return a + b })
	grab(regs)
	machine.Scan(m, regs, seg, machine.Backward, func(a, b int) int { return a + b })
	grab(regs)

	// Semigroup (min) and broadcast.
	regs = machine.Scatter(n, vals)
	machine.Semigroup(m, regs, seg, func(a, b int) int {
		if a < b {
			return a
		}
		return b
	})
	grab(regs)
	bregs := make([]machine.Reg[int], n)
	bregs[n/3] = machine.Some(vals[0])
	machine.Spread(m, bregs, machine.WholeMachine(n))
	grab(bregs)

	// Compaction of a sparse file, then a block-local shift.
	sparse := make([]machine.Reg[int], n)
	for i := 0; i < n; i += 3 {
		sparse[i] = machine.Some(vals[i])
	}
	machine.Compact(m, sparse, seg)
	grab(sparse)
	shifted := machine.ShiftWithin(m, sparse, 16, +2)
	grab(shifted)

	// Grouping / sort-based concurrent read.
	idx := machine.Group(m, vals[:n/2], vals[n/4:3*n/4], func(a, b int) bool { return a < b })
	ig := make([]machine.Reg[int], len(idx))
	for i, v := range idx {
		ig[i] = machine.Some(v)
	}
	grab(ig)

	return outs, m.Stats()
}

// requireSpansEqual walks two span trees in lockstep and fails on the
// first structural, attribute, counter, or round-stream divergence.
func requireSpansEqual(t *testing.T, want, got *trace.Span, path string) {
	t.Helper()
	if want.Name != got.Name {
		t.Fatalf("%s: span name %q != %q", path, got.Name, want.Name)
	}
	path += "/" + want.Name
	if !reflect.DeepEqual(want.Attrs, got.Attrs) {
		t.Fatalf("%s: attrs %v != %v", path, got.Attrs, want.Attrs)
	}
	if want.Begin != got.Begin || want.End != got.End {
		t.Fatalf("%s: counters begin %+v end %+v != begin %+v end %+v",
			path, got.Begin, got.End, want.Begin, want.End)
	}
	if !reflect.DeepEqual(want.Rounds, got.Rounds) {
		t.Fatalf("%s: round stream diverges (%d vs %d rounds): got %+v want %+v",
			path, len(got.Rounds), len(want.Rounds), got.Rounds, want.Rounds)
	}
	if len(want.Children) != len(got.Children) {
		t.Fatalf("%s: %d children != %d", path, len(got.Children), len(want.Children))
	}
	for i := range want.Children {
		requireSpansEqual(t, want.Children[i], got.Children[i], path)
	}
}

// TestParallelDifferentialTable1 proves the worker-pool backend
// bit-identical to the serial one on all four topologies × worker counts:
// same outputs, same Stats, same span tree with the same round stream.
func TestParallelDifferentialTable1(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for topoName, topo := range diffTopologies() {
		vals := make([]int, topo.Size())
		for i := range vals {
			vals[i] = r.Intn(1 << 16)
		}
		serial := machine.New(topo)
		str := trace.Attach(serial, "diff", trace.WithRounds())
		wantOuts, wantStats := table1Workload(serial, vals)
		wantRoot := str.Finish()

		for _, workers := range diffWorkers {
			t.Run(topoName, func(t *testing.T) {
				par := machine.New(topo, machine.WithParallel(workers))
				if par.Workers() != workers {
					t.Fatalf("Workers() = %d, want %d", par.Workers(), workers)
				}
				ptr := trace.Attach(par, "diff", trace.WithRounds())
				gotOuts, gotStats := table1Workload(par, vals)
				gotRoot := ptr.Finish()

				if !reflect.DeepEqual(wantOuts, gotOuts) {
					for k := range wantOuts {
						if !reflect.DeepEqual(wantOuts[k], gotOuts[k]) {
							t.Fatalf("workers=%d: output %d diverges from serial", workers, k)
						}
					}
					t.Fatalf("workers=%d: outputs diverge from serial", workers)
				}
				if gotStats != wantStats {
					t.Fatalf("workers=%d: stats %+v != serial %+v", workers, gotStats, wantStats)
				}
				requireSpansEqual(t, wantRoot, gotRoot, "")
			})
		}
	}
}

// TestParallelDifferentialEnvelope runs the Theorem 3.2 envelope (whose
// Lemma 3.1 window step is the hottest sharded loop) serial vs parallel.
func TestParallelDifferentialEnvelope(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	n := 32
	cs := make([]curve.Curve, n)
	for i := range cs {
		cs[i] = curve.NewPoly(poly.New(r.NormFloat64()*5, r.NormFloat64(), 0.2+r.Float64()))
	}
	for _, tc := range []struct {
		name string
		topo machine.Topology
	}{
		{"mesh", mesh.MustNew(penvelope.MeshPEs(n, 2), mesh.Proximity)},
		{"hypercube", hypercube.MustNew(penvelope.CubePEs(n, 2))},
	} {
		serial := machine.New(tc.topo)
		str := trace.Attach(serial, "env", trace.WithRounds())
		wantEnv, err := penvelope.EnvelopeOfCurves(serial, cs, pieces.Min)
		if err != nil {
			t.Fatal(err)
		}
		wantStats, wantRoot := serial.Stats(), str.Finish()

		for _, workers := range diffWorkers {
			par := machine.New(tc.topo, machine.WithParallel(workers))
			ptr := trace.Attach(par, "env", trace.WithRounds())
			gotEnv, err := penvelope.EnvelopeOfCurves(par, cs, pieces.Min)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wantEnv, gotEnv) {
				t.Fatalf("%s workers=%d: envelope diverges from serial", tc.name, workers)
			}
			if got := par.Stats(); got != wantStats {
				t.Fatalf("%s workers=%d: stats %+v != serial %+v", tc.name, workers, got, wantStats)
			}
			requireSpansEqual(t, wantRoot, ptr.Finish(), tc.name)
		}
	}
}

// TestParallelDifferentialGeometry runs the static geometry algorithms
// (closest pair, convex hull, nearest neighbour) serial vs parallel.
func TestParallelDifferentialGeometry(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	n := 64
	pts := make([]geom.Point[ratfun.F64], n)
	for i := range pts {
		pts[i] = geom.Point[ratfun.F64]{
			X: ratfun.F64(r.NormFloat64() * 20), Y: ratfun.F64(r.NormFloat64() * 20), ID: i,
		}
	}
	cpTopo := hypercube.MustNew(4 * n)
	hullTopo := hypercube.MustNew(8 * n)

	scp := machine.New(cpTopo)
	wa, wb, wd := pgeom.ClosestPair(scp, pts)
	shm := machine.New(hullTopo)
	wantHull, err := pgeom.HullStatic(shm, pts)
	if err != nil {
		t.Fatal(err)
	}
	snn := machine.New(cpTopo)
	wantNN := pgeom.NearestNeighbor(snn, pts, 0, false)

	for _, workers := range diffWorkers {
		pcp := machine.New(cpTopo, machine.WithParallel(workers))
		ga, gb, gd := pgeom.ClosestPair(pcp, pts)
		if ga != wa || gb != wb || gd != wd || pcp.Stats() != scp.Stats() {
			t.Fatalf("workers=%d: closest pair (%d,%d,%v,%+v) != serial (%d,%d,%v,%+v)",
				workers, ga, gb, gd, pcp.Stats(), wa, wb, wd, scp.Stats())
		}
		phm := machine.New(hullTopo, machine.WithParallel(workers))
		gotHull, err := pgeom.HullStatic(phm, pts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantHull, gotHull) || phm.Stats() != shm.Stats() {
			t.Fatalf("workers=%d: hull diverges from serial", workers)
		}
		pnn := machine.New(cpTopo, machine.WithParallel(workers))
		if got := pgeom.NearestNeighbor(pnn, pts, 0, false); got != wantNN || pnn.Stats() != snn.Stats() {
			t.Fatalf("workers=%d: nearest neighbour %d (%+v) != serial %d (%+v)",
				workers, got, pnn.Stats(), wantNN, snn.Stats())
		}
	}
}
